//! The deterministic trace checker.
//!
//! Two contracts (DESIGN.md §6):
//!
//! 1. **Determinism** — the same scenario with the same seed must replay
//!    to a bit-identical trace on each deterministic engine
//!    ([`assert_deterministic`] runs it twice and compares
//!    fingerprints).
//! 2. **Protocol invariants** — under any scheduled fault load that stays
//!    within the paper's bounds, every engine must preserve *safety*
//!    (honest finishers hold finite, mutually-close models) and
//!    *liveness* (enough honest servers complete the run)
//!    ([`check_invariants`]).

use aggregation::properties::diameter;
use guanyu::Result;
use serde::{Deserialize, Serialize};

use crate::run::{
    calibrate_round_secs, run_event_with, run_lockstep, run_threaded, Engine, ScenarioRun,
};
use crate::scenario::Scenario;

/// What the invariant check measured (one engine, one scenario).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InvariantReport {
    /// Scenario name.
    pub scenario: String,
    /// Engine label.
    pub engine: String,
    /// Trace fingerprint (the determinism witness).
    pub fingerprint: u64,
    /// Honest servers that completed the final step.
    pub finishers: usize,
    /// The scenario's lower bound on finishers.
    pub min_finishers: usize,
    /// Diameter of the finishers' final models.
    pub agreement_diameter: f64,
    /// Scale the diameter is judged against (max final-model norm, ≥ 1).
    pub scale: f64,
    /// Messages the fault plan dropped (event engine).
    pub messages_dropped: u64,
    /// Transient drop-tail queue overflows (switched-network runs; the
    /// transport retransmitted these).
    #[serde(default)]
    pub queue_drops: u64,
    /// Go-back-n retransmission attempts (switched-network runs).
    #[serde(default)]
    pub retransmits: u64,
    /// Simulated seconds.
    pub sim_secs: f64,
}

/// Runs the scenario twice on one engine and asserts bit-identical
/// traces; returns the (verified-deterministic) run.
///
/// # Errors
///
/// Propagates engine errors.
///
/// # Panics
///
/// Panics when the two fingerprints differ — the determinism contract is
/// broken and nothing downstream can be trusted.
pub fn assert_deterministic(scn: &Scenario, engine: Engine) -> Result<ScenarioRun> {
    let (a, b) = match engine {
        Engine::Lockstep => (run_lockstep(scn)?, run_lockstep(scn)?),
        Engine::EventDriven => {
            // Calibration is deterministic: measure once, share across
            // both replays (saves a full dry run per replay).
            let round_secs = calibrate_round_secs(scn)?;
            (
                run_event_with(scn, round_secs)?,
                run_event_with(scn, round_secs)?,
            )
        }
        Engine::Threaded => (run_threaded(scn)?, run_threaded(scn)?),
    };
    assert_eq!(
        a.trace, b.trace,
        "{engine} engine: scenario '{}' (seed {}) did not replay bit-identically",
        scn.name, scn.seed
    );
    assert_eq!(a.fingerprint(), b.fingerprint());
    Ok(a)
}

/// Checks the protocol-level invariants on a completed run and returns
/// the measurements.
///
/// # Errors
///
/// Returns a human-readable description of the first violated invariant.
pub fn check_invariants(
    scn: &Scenario,
    run: &ScenarioRun,
) -> std::result::Result<InvariantReport, String> {
    let label = format!("scenario '{}' on {}", scn.name, run.engine);

    // Liveness: the run made it to the final step at sufficient strength.
    if run.diverged {
        return Err(format!("{label}: diverged under bounded faults"));
    }
    if run.trace.is_empty() {
        return Err(format!("{label}: recorded no rounds"));
    }
    let min_finishers = scn.min_finishers();
    if run.finishers.len() < min_finishers {
        return Err(format!(
            "{label}: only {} finishers, expected ≥ {min_finishers}",
            run.finishers.len()
        ));
    }

    // Safety: finite models, in agreement.
    for (id, p) in run.finishers.iter().zip(&run.final_params) {
        if !p.is_finite() {
            return Err(format!("{label}: server {id} holds non-finite parameters"));
        }
    }
    let (diam, scale) = if run.final_params.len() >= 2 {
        let diam = diameter(&run.final_params).map_err(|e| format!("{label}: {e}"))? as f64;
        let scale = run
            .final_params
            .iter()
            .map(|p| p.norm() as f64)
            .fold(1.0f64, f64::max);
        if diam > scale {
            return Err(format!(
                "{label}: honest finishers disagree: diameter {diam} vs scale {scale}"
            ));
        }
        (diam, scale)
    } else {
        (0.0, 1.0)
    };

    Ok(InvariantReport {
        scenario: scn.name.clone(),
        engine: run.engine.to_string(),
        fingerprint: run.fingerprint(),
        finishers: run.finishers.len(),
        min_finishers,
        agreement_diameter: diam,
        scale,
        messages_dropped: run.messages_dropped,
        queue_drops: run.queue_drops,
        retransmits: run.retransmits,
        sim_secs: run.sim_secs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use guanyu::faults::FaultKind;

    #[test]
    fn deterministic_baseline_passes_invariants_on_both_engines() {
        let scn = Scenario::baseline("check", 9);
        for engine in [Engine::Lockstep, Engine::EventDriven] {
            let run = assert_deterministic(&scn, engine).unwrap();
            let report = check_invariants(&scn, &run).unwrap();
            assert_eq!(report.finishers, 6);
            assert!(report.agreement_diameter <= report.scale);
        }
    }

    #[test]
    fn invariant_checker_flags_thin_finishers() {
        let scn = Scenario::baseline("thin", 9);
        let mut run = run_lockstep(&scn).unwrap();
        run.finishers.truncate(2);
        run.final_params.truncate(2);
        let err = check_invariants(&scn, &run).unwrap_err();
        assert!(err.contains("finishers"), "{err}");
    }

    #[test]
    fn invariant_checker_flags_disagreement() {
        let scn = Scenario::baseline("split", 9);
        let mut run = run_lockstep(&scn).unwrap();
        // Fake a split-brain outcome: two finishers on opposite ends.
        run.final_params[0] = run.final_params[0].shift(1e6);
        run.final_params[1] = run.final_params[1].shift(-1e6);
        let err = check_invariants(&scn, &run).unwrap_err();
        assert!(err.contains("disagree"), "{err}");
    }

    #[test]
    fn crash_scenario_is_deterministic_on_lockstep() {
        let scn = Scenario::baseline("det-crash", 17).with_fault(
            2,
            5,
            FaultKind::CrashServers { servers: vec![0] },
        );
        let run = assert_deterministic(&scn, Engine::Lockstep).unwrap();
        check_invariants(&scn, &run).unwrap();
    }
}
