//! Fuzz-style round-trip properties for the `.scenario.json` schema: any
//! scenario the chaos sampler can produce — arbitrary compositions of all
//! eight fault kinds, every cluster shape in the feasible region — must
//! survive `parse(print(s)) == s` exactly, or a committed reproducer
//! would silently decay. Same contract style as the wire codec's
//! `wire_fuzz.rs`.

use proptest::prelude::*;
use scenario::{ChaosGen, Expectation, Scenario, ScenarioFile, Violation, ViolationKind};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every sampleable scenario round-trips through JSON exactly.
    #[test]
    fn sampled_scenarios_roundtrip(seed in any::<u64>(), skip in 0usize..6) {
        let mut gen = ChaosGen::new(seed);
        let mut scn = gen.sample();
        for _ in 0..skip {
            scn = gen.sample();
        }
        let json = serde_json::to_string(&scn).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, scn);
    }

    /// The full file wrapper — version, expectation, scenario — round-trips
    /// for both expectation variants.
    #[test]
    fn scenario_files_roundtrip(seed in any::<u64>(), violating in any::<bool>()) {
        let scn = ChaosGen::new(seed).sample();
        let violation = violating.then(|| Violation {
            engine: "event-driven".into(),
            kind: ViolationKind::Invariant,
            detail: "synthetic".into(),
        });
        let file = ScenarioFile::new(scn, violation.as_ref());
        let json = file.to_json().unwrap();
        let back: ScenarioFile = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &file);
        match (violating, &back.expect) {
            (true, Expectation::Violation { kind, .. }) => {
                prop_assert!(matches!(kind, ViolationKind::Invariant));
            }
            (false, Expectation::Pass) => {}
            other => prop_assert!(false, "wrong expectation after round-trip: {:?}", other),
        }
    }
}

/// The fixed matrix — one scenario per fault class, the shapes the tier-1
/// suite runs — round-trips too (the sampler does not cover hand-built
/// names and comments).
#[test]
fn matrix_scenarios_roundtrip() {
    for scn in scenario::matrix(40) {
        let json = serde_json::to_string(&scn).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, scn, "{} mutated in round-trip", back.name);
    }
}
