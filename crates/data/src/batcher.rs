//! Seeded mini-batch iteration.

use tensor::{Tensor, TensorRng};

use crate::{Dataset, Result};

/// Yields shuffled mini-batches from a [`Dataset`], reshuffling at every
/// epoch boundary with its own deterministic random stream.
///
/// Each simulated worker owns one `Batcher` seeded from its node id, so
/// workers draw independent stochastic gradients — the i.i.d.-across-workers
/// assumption (assumption 3) of the paper's proof.
#[derive(Debug, Clone)]
pub struct Batcher {
    order: Vec<usize>,
    cursor: usize,
    batch_size: usize,
    epoch: usize,
    rng: TensorRng,
}

impl Batcher {
    /// Creates a batcher with the given batch size and seed.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is 0.
    pub fn new(dataset_len: usize, batch_size: usize, seed: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        let mut rng = TensorRng::new(seed);
        let mut order: Vec<usize> = (0..dataset_len).collect();
        rng.shuffle(&mut order);
        Batcher {
            order,
            cursor: 0,
            batch_size,
            epoch: 0,
            rng,
        }
    }

    /// The configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Completed epochs (full passes over the data).
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// Returns the next batch of indices, wrapping (and reshuffling) at the
    /// epoch boundary. The final partial batch of an epoch is padded from
    /// the next epoch's order, so every batch has exactly `batch_size`
    /// elements — matching fixed-size mini-batch SGD.
    pub fn next_indices(&mut self) -> Vec<usize> {
        let mut batch = Vec::with_capacity(self.batch_size);
        while batch.len() < self.batch_size {
            if self.cursor >= self.order.len() {
                self.rng.shuffle(&mut self.order);
                self.cursor = 0;
                self.epoch += 1;
            }
            batch.push(self.order[self.cursor]);
            self.cursor += 1;
        }
        batch
    }

    /// Convenience: materialises the next `(features, labels)` batch from
    /// `dataset`.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::DatasetError`] if the dataset is smaller than the
    /// index order this batcher was built for.
    pub fn next_batch(&mut self, dataset: &Dataset) -> Result<(Tensor, Vec<usize>)> {
        let idx = self.next_indices();
        dataset.batch(&idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_have_fixed_size() {
        let mut b = Batcher::new(10, 4, 0);
        for _ in 0..10 {
            assert_eq!(b.next_indices().len(), 4);
        }
    }

    #[test]
    fn epoch_covers_all_examples() {
        let mut b = Batcher::new(8, 4, 1);
        let mut seen: Vec<usize> = Vec::new();
        seen.extend(b.next_indices());
        seen.extend(b.next_indices());
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn epoch_counter_advances() {
        let mut b = Batcher::new(6, 3, 2);
        assert_eq!(b.epoch(), 0);
        b.next_indices();
        b.next_indices();
        b.next_indices(); // wraps into epoch 1
        assert_eq!(b.epoch(), 1);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Batcher::new(20, 5, 7);
        let mut b = Batcher::new(20, 5, 7);
        for _ in 0..8 {
            assert_eq!(a.next_indices(), b.next_indices());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Batcher::new(20, 5, 7);
        let mut b = Batcher::new(20, 5, 8);
        let xs: Vec<Vec<usize>> = (0..4).map(|_| a.next_indices()).collect();
        let ys: Vec<Vec<usize>> = (0..4).map(|_| b.next_indices()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_panics() {
        let _ = Batcher::new(10, 0, 0);
    }

    #[test]
    fn next_batch_materialises() {
        let features = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[4, 2]).unwrap();
        let d = Dataset::new(features, vec![0, 1, 0, 1], 2).unwrap();
        let mut b = Batcher::new(4, 2, 3);
        let (x, y) = b.next_batch(&d).unwrap();
        assert_eq!(x.dims(), &[2, 2]);
        assert_eq!(y.len(), 2);
    }
}
