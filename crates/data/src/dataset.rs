//! The [`Dataset`] container.

use std::fmt;

use tensor::{Tensor, TensorError};

/// Errors produced by dataset construction and access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// Features and labels disagree on the number of examples.
    LengthMismatch {
        /// Example count implied by the features tensor.
        features: usize,
        /// Number of labels provided.
        labels: usize,
    },
    /// A label is outside `[0, num_classes)`.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// The declared class count.
        num_classes: usize,
    },
    /// The features tensor must have rank ≥ 2 (`[n, ...]`).
    BadFeatureRank(usize),
    /// Requested example index out of range.
    IndexOutOfRange {
        /// Requested index.
        index: usize,
        /// Dataset size.
        len: usize,
    },
    /// I/O failure while loading an on-disk dataset.
    Io(String),
    /// An underlying tensor operation failed.
    Tensor(TensorError),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::LengthMismatch { features, labels } => {
                write!(f, "{features} feature rows but {labels} labels")
            }
            DatasetError::LabelOutOfRange { label, num_classes } => {
                write!(f, "label {label} out of range for {num_classes} classes")
            }
            DatasetError::BadFeatureRank(r) => {
                write!(f, "features must have rank >= 2, got {r}")
            }
            DatasetError::IndexOutOfRange { index, len } => {
                write!(f, "example {index} out of range for dataset of {len}")
            }
            DatasetError::Io(msg) => write!(f, "dataset I/O error: {msg}"),
            DatasetError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for DatasetError {}

impl From<TensorError> for DatasetError {
    fn from(e: TensorError) -> Self {
        DatasetError::Tensor(e)
    }
}

/// A supervised classification dataset: a features tensor `[n, ...]` and
/// `n` integer labels in `[0, num_classes)`.
#[derive(Debug, Clone)]
pub struct Dataset {
    features: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Creates a dataset, validating shapes and label ranges.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError`] variants for rank/length/label violations.
    pub fn new(features: Tensor, labels: Vec<usize>, num_classes: usize) -> crate::Result<Self> {
        if features.rank() < 2 {
            return Err(DatasetError::BadFeatureRank(features.rank()));
        }
        let n = features.dims()[0];
        if labels.len() != n {
            return Err(DatasetError::LengthMismatch {
                features: n,
                labels: labels.len(),
            });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= num_classes) {
            return Err(DatasetError::LabelOutOfRange {
                label: bad,
                num_classes,
            });
        }
        Ok(Dataset {
            features,
            labels,
            num_classes,
        })
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.features.dims()[0]
    }

    /// Whether the dataset has no examples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The full features tensor.
    pub fn features(&self) -> &Tensor {
        &self.features
    }

    /// The full label list.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Shape of a single example (feature dims without the leading `n`).
    pub fn example_dims(&self) -> &[usize] {
        &self.features.dims()[1..]
    }

    /// Gathers the examples at `indices` into a `(features, labels)` batch.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::IndexOutOfRange`] for invalid indices.
    pub fn batch(&self, indices: &[usize]) -> crate::Result<(Tensor, Vec<usize>)> {
        let stride: usize = self.example_dims().iter().product();
        let mut data = Vec::with_capacity(indices.len() * stride);
        let mut labels = Vec::with_capacity(indices.len());
        let src = self.features.as_slice();
        for &i in indices {
            if i >= self.len() {
                return Err(DatasetError::IndexOutOfRange {
                    index: i,
                    len: self.len(),
                });
            }
            data.extend_from_slice(&src[i * stride..(i + 1) * stride]);
            labels.push(self.labels[i]);
        }
        let mut dims = vec![indices.len()];
        dims.extend_from_slice(self.example_dims());
        Ok((Tensor::from_vec(data, &dims)?, labels))
    }

    /// Splits into `(first k, rest)` — used for train/test splits.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::IndexOutOfRange`] if `k > len`.
    pub fn split_at(&self, k: usize) -> crate::Result<(Dataset, Dataset)> {
        if k > self.len() {
            return Err(DatasetError::IndexOutOfRange {
                index: k,
                len: self.len(),
            });
        }
        let head_idx: Vec<usize> = (0..k).collect();
        let tail_idx: Vec<usize> = (k..self.len()).collect();
        let (hf, hl) = self.batch(&head_idx)?;
        let (tf, tl) = self.batch(&tail_idx)?;
        Ok((
            Dataset::new(hf, hl, self.num_classes)?,
            Dataset::new(tf, tl, self.num_classes)?,
        ))
    }

    /// Per-class example counts (length `num_classes`).
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.num_classes];
        for &l in &self.labels {
            hist[l] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let features = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[4, 3]).unwrap();
        Dataset::new(features, vec![0, 1, 0, 1], 2).unwrap()
    }

    #[test]
    fn construction_validates() {
        let f = Tensor::zeros(&[3, 2]);
        assert!(Dataset::new(f.clone(), vec![0, 1], 2).is_err()); // length
        assert!(Dataset::new(f.clone(), vec![0, 1, 5], 2).is_err()); // range
        assert!(Dataset::new(Tensor::zeros(&[3]), vec![0, 0, 0], 1).is_err()); // rank
        assert!(Dataset::new(f, vec![0, 1, 1], 2).is_ok());
    }

    #[test]
    fn batch_gathers_rows() {
        let d = tiny();
        let (x, y) = d.batch(&[2, 0]).unwrap();
        assert_eq!(x.dims(), &[2, 3]);
        assert_eq!(x.as_slice(), &[6.0, 7.0, 8.0, 0.0, 1.0, 2.0]);
        assert_eq!(y, vec![0, 0]);
    }

    #[test]
    fn batch_rejects_out_of_range() {
        let d = tiny();
        assert!(d.batch(&[4]).is_err());
    }

    #[test]
    fn split_sizes() {
        let d = tiny();
        let (train, test) = d.split_at(3).unwrap();
        assert_eq!(train.len(), 3);
        assert_eq!(test.len(), 1);
        assert_eq!(test.labels(), &[1]);
        assert!(d.split_at(5).is_err());
    }

    #[test]
    fn histogram_counts() {
        let d = tiny();
        assert_eq!(d.class_histogram(), vec![2, 2]);
    }

    #[test]
    fn example_dims_multi_rank() {
        let f = Tensor::zeros(&[2, 3, 4, 4]);
        let d = Dataset::new(f, vec![0, 0], 1).unwrap();
        assert_eq!(d.example_dims(), &[3, 4, 4]);
        let (x, _) = d.batch(&[1]).unwrap();
        assert_eq!(x.dims(), &[1, 3, 4, 4]);
    }
}
