//! Loader for the real CIFAR-10 binary format.
//!
//! CIFAR-10's binary batches (`data_batch_1.bin` … `data_batch_5.bin`,
//! `test_batch.bin`) each hold 10 000 records of 3073 bytes: one label byte
//! followed by 3×32×32 channel-major pixel bytes. This loader exists so the
//! reproduction can run on the paper's real dataset when the files are
//! present; the offline experiments use [`crate::synthetic_cifar`] instead
//! (see DESIGN.md §4).

use std::fs;
use std::path::Path;

use tensor::Tensor;

use crate::{Dataset, DatasetError, Result};

const RECORD: usize = 1 + 3 * 32 * 32;

/// Parses one CIFAR-10 binary file's bytes into `(pixels, labels)`.
///
/// Pixels are scaled to `[-1, 1]` (`x/127.5 - 1`).
fn parse_batch(bytes: &[u8]) -> Result<(Vec<f32>, Vec<usize>)> {
    if bytes.is_empty() || !bytes.len().is_multiple_of(RECORD) {
        return Err(DatasetError::Io(format!(
            "CIFAR batch length {} is not a multiple of {RECORD}",
            bytes.len()
        )));
    }
    let n = bytes.len() / RECORD;
    let mut pixels = Vec::with_capacity(n * (RECORD - 1));
    let mut labels = Vec::with_capacity(n);
    for rec in bytes.chunks_exact(RECORD) {
        let label = rec[0] as usize;
        if label >= 10 {
            return Err(DatasetError::Io(format!("CIFAR label {label} > 9")));
        }
        labels.push(label);
        pixels.extend(rec[1..].iter().map(|&b| b as f32 / 127.5 - 1.0));
    }
    Ok((pixels, labels))
}

/// Loads CIFAR-10 from a directory containing the binary batches.
///
/// Returns `(train, test)`: the five training batches concatenated
/// (50 000 images) and the test batch (10 000 images), with features
/// `[n, 3, 32, 32]` in `[-1, 1]`.
///
/// # Errors
///
/// Returns [`DatasetError::Io`] when files are missing or malformed.
pub fn load_cifar10_dir(dir: &Path) -> Result<(Dataset, Dataset)> {
    let mut train_pixels = Vec::new();
    let mut train_labels = Vec::new();
    for i in 1..=5 {
        let path = dir.join(format!("data_batch_{i}.bin"));
        let bytes =
            fs::read(&path).map_err(|e| DatasetError::Io(format!("{}: {e}", path.display())))?;
        let (p, l) = parse_batch(&bytes)?;
        train_pixels.extend(p);
        train_labels.extend(l);
    }
    let test_path = dir.join("test_batch.bin");
    let bytes = fs::read(&test_path)
        .map_err(|e| DatasetError::Io(format!("{}: {e}", test_path.display())))?;
    let (test_pixels, test_labels) = parse_batch(&bytes)?;

    let n_train = train_labels.len();
    let n_test = test_labels.len();
    Ok((
        Dataset::new(
            Tensor::from_vec(train_pixels, &[n_train, 3, 32, 32])?,
            train_labels,
            10,
        )?,
        Dataset::new(
            Tensor::from_vec(test_pixels, &[n_test, 3, 32, 32])?,
            test_labels,
            10,
        )?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_synthetic_record() {
        // one record: label 7, all pixels 255
        let mut bytes = vec![7u8];
        bytes.extend(std::iter::repeat_n(255u8, RECORD - 1));
        let (pixels, labels) = parse_batch(&bytes).unwrap();
        assert_eq!(labels, vec![7]);
        assert_eq!(pixels.len(), 3 * 32 * 32);
        assert!((pixels[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn parse_scales_zero_to_minus_one() {
        let mut bytes = vec![0u8];
        bytes.extend(std::iter::repeat_n(0u8, RECORD - 1));
        let (pixels, _) = parse_batch(&bytes).unwrap();
        assert!((pixels[0] + 1.0).abs() < 1e-6);
    }

    #[test]
    fn parse_rejects_truncated() {
        assert!(parse_batch(&[1, 2, 3]).is_err());
        assert!(parse_batch(&[]).is_err());
    }

    #[test]
    fn parse_rejects_bad_label() {
        let mut bytes = vec![12u8];
        bytes.extend(std::iter::repeat_n(0u8, RECORD - 1));
        assert!(parse_batch(&bytes).is_err());
    }

    #[test]
    fn missing_directory_is_io_error() {
        let err = load_cifar10_dir(Path::new("/nonexistent-cifar")).unwrap_err();
        assert!(matches!(err, DatasetError::Io(_)));
    }
}
