//! Datasets for the GuanYu reproduction.
//!
//! The paper evaluates on CIFAR-10. CIFAR-10's binary files are not
//! available in this offline environment, so the primary dataset here is a
//! **synthetic CIFAR substitute** ([`synthetic_cifar`]): 10 Gaussian class
//! prototypes in image space with controlled intra-class noise. The
//! substitution is documented in `DESIGN.md` §4; nothing in the paper's
//! claims depends on natural-image statistics — the workload only needs a
//! non-convex classification task with measurable held-out accuracy.
//!
//! A loader for the real CIFAR-10 binary format ([`load_cifar10_dir`]) is
//! included for environments where the files exist.
//!
//! [`Dataset`] carries features and labels; [`Batcher`] yields seeded,
//! shuffled mini-batches so each simulated worker draws an independent
//! stochastic gradient stream.

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod batcher;
mod cifar;
mod dataset;
mod partition;
mod synthetic;

pub use batcher::Batcher;
pub use cifar::load_cifar10_dir;
pub use dataset::{Dataset, DatasetError};
pub use partition::{label_skew, partition_dataset, partition_indices, Partition};
pub use synthetic::{gaussian_blobs, synthetic_cifar, SyntheticConfig};

/// Convenience alias for dataset results.
pub type Result<T> = std::result::Result<T, DatasetError>;
