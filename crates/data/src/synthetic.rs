//! Synthetic datasets: the CIFAR-10 substitute and fast low-dimensional
//! blobs.

use serde::{Deserialize, Serialize};
use tensor::{Tensor, TensorRng};

use crate::{Dataset, Result};

/// Configuration for [`synthetic_cifar`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Number of training examples.
    pub train: usize,
    /// Number of test examples.
    pub test: usize,
    /// Image side length (CIFAR is 32; the fast experiments use 8).
    pub side: usize,
    /// Number of channels (CIFAR is 3).
    pub channels: usize,
    /// Number of classes (CIFAR is 10).
    pub classes: usize,
    /// Per-pixel Gaussian noise std added to the class prototype. Controls
    /// task difficulty: higher noise → lower attainable accuracy.
    pub noise: f32,
    /// Fraction of labels flipped uniformly at random (poisoned labels in
    /// some experiments; 0.0 for the standard workload).
    pub label_noise: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            train: 1024,
            test: 256,
            side: 8,
            channels: 3,
            classes: 10,
            noise: 0.35,
            label_noise: 0.0,
            seed: 0,
        }
    }
}

/// Generates the synthetic CIFAR substitute (substitution S3 in DESIGN.md).
///
/// Each class `c` gets a smooth random prototype image (a mixture of a few
/// random low-frequency sinusoids, mimicking the dominant low-frequency
/// energy of natural images); an example of class `c` is the prototype plus
/// i.i.d. pixel noise. The task is learnable but not trivial: a linear
/// model underfits at high noise, the paper's CNN topology separates it.
///
/// Returns `(train, test)` datasets with features `[n, channels, side,
/// side]` normalised to roughly [-1, 1].
///
/// # Errors
///
/// Propagates tensor construction errors (shape volume overflow etc.).
pub fn synthetic_cifar(config: &SyntheticConfig) -> Result<(Dataset, Dataset)> {
    let mut rng = TensorRng::new(config.seed);
    let side = config.side;
    let c = config.channels;
    let pixels = c * side * side;

    // Class prototypes: sum of 4 random 2-D sinusoids per channel.
    let mut prototypes: Vec<Vec<f32>> = Vec::with_capacity(config.classes);
    for _ in 0..config.classes {
        let mut proto = vec![0.0f32; pixels];
        for ch in 0..c {
            for _ in 0..4 {
                let fx = rng.uniform(0.5, 2.5);
                let fy = rng.uniform(0.5, 2.5);
                let phase = rng.uniform(0.0, std::f32::consts::TAU);
                let amp = rng.uniform(0.3, 0.7);
                for y in 0..side {
                    for x in 0..side {
                        let v = amp
                            * (fx * x as f32 / side as f32 * std::f32::consts::TAU
                                + fy * y as f32 / side as f32 * std::f32::consts::TAU
                                + phase)
                                .sin();
                        proto[ch * side * side + y * side + x] += v;
                    }
                }
            }
        }
        prototypes.push(proto);
    }

    let make = |n: usize, rng: &mut TensorRng| -> Result<Dataset> {
        let mut data = Vec::with_capacity(n * pixels);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % config.classes; // balanced classes
            let proto = &prototypes[class];
            for &p in proto {
                data.push(p + rng.normal(0.0, config.noise));
            }
            let label = if config.label_noise > 0.0 && rng.uniform(0.0, 1.0) < config.label_noise {
                rng.below(config.classes)
            } else {
                class
            };
            labels.push(label);
        }
        Dataset::new(
            Tensor::from_vec(data, &[n, c, side, side])?,
            labels,
            config.classes,
        )
    };

    let train = make(config.train, &mut rng)?;
    let test = make(config.test, &mut rng)?;
    Ok((train, test))
}

/// Low-dimensional Gaussian blobs: `classes` isotropic clusters in
/// `R^features`, for fast convergence tests (e.g. logistic regression with
/// a known-separable optimum).
///
/// Returns a single dataset of `n` examples with features `[n, features]`.
///
/// # Errors
///
/// Propagates tensor construction errors.
pub fn gaussian_blobs(
    n: usize,
    features: usize,
    classes: usize,
    spread: f32,
    seed: u64,
) -> Result<Dataset> {
    let mut rng = TensorRng::new(seed);
    // Class centers on a scaled simplex-ish layout.
    let centers: Vec<Vec<f32>> = (0..classes)
        .map(|_| (0..features).map(|_| rng.uniform(-2.0, 2.0)).collect())
        .collect();
    let mut data = Vec::with_capacity(n * features);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % classes;
        for &center in &centers[class] {
            data.push(center + rng.normal(0.0, spread));
        }
        labels.push(class);
    }
    Dataset::new(Tensor::from_vec(data, &[n, features])?, labels, classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_sizes() {
        let cfg = SyntheticConfig {
            train: 40,
            test: 20,
            side: 8,
            ..Default::default()
        };
        let (train, test) = synthetic_cifar(&cfg).unwrap();
        assert_eq!(train.len(), 40);
        assert_eq!(test.len(), 20);
        assert_eq!(train.example_dims(), &[3, 8, 8]);
        assert_eq!(train.num_classes(), 10);
    }

    #[test]
    fn classes_are_balanced() {
        let cfg = SyntheticConfig {
            train: 100,
            test: 0,
            ..Default::default()
        };
        let (train, _) = synthetic_cifar(&cfg).unwrap();
        let hist = train.class_histogram();
        assert_eq!(hist, vec![10; 10]);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = SyntheticConfig {
            train: 16,
            test: 4,
            ..Default::default()
        };
        let (a, _) = synthetic_cifar(&cfg).unwrap();
        let (b, _) = synthetic_cifar(&cfg).unwrap();
        assert_eq!(a.features(), b.features());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = SyntheticConfig {
            train: 16,
            test: 0,
            ..Default::default()
        };
        let (a, _) = synthetic_cifar(&cfg).unwrap();
        cfg.seed = 1;
        let (b, _) = synthetic_cifar(&cfg).unwrap();
        assert_ne!(a.features(), b.features());
    }

    #[test]
    fn same_class_examples_are_correlated() {
        // Two examples of the same class should be closer (on average) than
        // two examples of different classes: the signal the CNN learns.
        let cfg = SyntheticConfig {
            train: 60,
            test: 0,
            noise: 0.2,
            ..Default::default()
        };
        let (train, _) = synthetic_cifar(&cfg).unwrap();
        let (x0, _) = train.batch(&[0]).unwrap(); // class 0
        let (x10, _) = train.batch(&[10]).unwrap(); // class 0 again
        let (x1, _) = train.batch(&[1]).unwrap(); // class 1
        let same = x0.distance(&x10).unwrap();
        let diff = x0.distance(&x1).unwrap();
        assert!(
            same < diff,
            "same-class distance {same} should be below cross-class {diff}"
        );
    }

    #[test]
    fn label_noise_flips_some_labels() {
        let cfg = SyntheticConfig {
            train: 500,
            test: 0,
            label_noise: 0.5,
            ..Default::default()
        };
        let (train, _) = synthetic_cifar(&cfg).unwrap();
        let flipped = train
            .labels()
            .iter()
            .enumerate()
            .filter(|(i, &l)| l != i % 10)
            .count();
        // ~45% expected (half flipped, of which 1/10 land on the original)
        assert!(flipped > 100, "only {flipped} labels flipped");
    }

    #[test]
    fn blobs_shapes() {
        let d = gaussian_blobs(30, 5, 3, 0.1, 0).unwrap();
        assert_eq!(d.len(), 30);
        assert_eq!(d.example_dims(), &[5]);
        assert_eq!(d.class_histogram(), vec![10, 10, 10]);
    }

    #[test]
    fn blobs_are_separable_at_low_spread() {
        let d = gaussian_blobs(60, 4, 2, 0.05, 1).unwrap();
        // nearest-center classification should be near perfect
        let (x, y) = d.batch(&(0..60).collect::<Vec<_>>()).unwrap();
        // compute class means
        let dims = 4;
        let mut means = vec![vec![0.0f32; dims]; 2];
        let mut counts = vec![0usize; 2];
        for (i, &label) in y.iter().enumerate() {
            for (f, m) in means[label].iter_mut().enumerate() {
                *m += x.as_slice()[i * dims + f];
            }
            counts[label] += 1;
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= c as f32;
            }
        }
        let mut correct = 0;
        for (i, &label) in y.iter().enumerate() {
            let row = &x.as_slice()[i * dims..(i + 1) * dims];
            let dist = |m: &[f32]| -> f32 { row.iter().zip(m).map(|(a, b)| (a - b).powi(2)).sum() };
            let pred = if dist(&means[0]) < dist(&means[1]) {
                0
            } else {
                1
            };
            if pred == label {
                correct += 1;
            }
        }
        assert!(correct >= 58, "only {correct}/60 nearest-center correct");
    }
}
