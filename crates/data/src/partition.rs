//! Partitioning a dataset across workers.
//!
//! The paper's proof assumes workers draw i.i.d. gradients (assumption 3).
//! Real federations are heterogeneous, so this module also provides
//! label-skewed partitions — a Dirichlet mixture (the standard federated-
//! learning benchmark protocol) and hard class shards — used by the
//! `noniid` experiment to probe how GuanYu's Multi-Krum behaves when
//! *honest* gradients disagree.

use tensor::TensorRng;

use crate::{Dataset, DatasetError, Result};

/// How examples are distributed across workers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Partition {
    /// Every worker samples from the full dataset (the paper's setting).
    Iid,
    /// Label-skewed split: for each class, worker shares are drawn from a
    /// symmetric Dirichlet(α). Small α → near-disjoint class ownership;
    /// large α → approaches IID.
    Dirichlet {
        /// Concentration parameter (> 0).
        alpha: f32,
    },
    /// Hard shards: each worker holds examples of at most
    /// `classes_per_worker` classes (round-robin assignment).
    Shards {
        /// Number of distinct classes per worker (≥ 1).
        classes_per_worker: usize,
    },
}

/// Samples Gamma(shape, 1) via Marsaglia–Tsang (with the boost for
/// shape < 1).
fn sample_gamma(shape: f64, rng: &mut TensorRng) -> f64 {
    if shape < 1.0 {
        // boost: Gamma(a) = Gamma(a+1) * U^(1/a)
        let u = rng.uniform(f32::EPSILON, 1.0) as f64;
        return sample_gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = rng.normal(0.0, 1.0) as f64;
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u = rng.uniform(f32::EPSILON, 1.0) as f64;
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Samples a probability vector from a symmetric Dirichlet(α) of length `k`.
fn sample_dirichlet(alpha: f64, k: usize, rng: &mut TensorRng) -> Vec<f64> {
    let gammas: Vec<f64> = (0..k).map(|_| sample_gamma(alpha, rng)).collect();
    let sum: f64 = gammas.iter().sum();
    if sum <= 0.0 {
        return vec![1.0 / k as f64; k];
    }
    gammas.into_iter().map(|g| g / sum).collect()
}

/// Splits `dataset`'s example indices into one shard per worker.
///
/// Every example lands in exactly one shard (for [`Partition::Iid`] the
/// examples are shuffled round-robin, so shards are balanced i.i.d.
/// samples). Shards are never empty: leftover redistribution guarantees
/// at least one example per worker as long as `len ≥ workers`.
///
/// # Errors
///
/// Returns [`DatasetError::Io`] (configuration error) when `workers` is 0,
/// the dataset is smaller than the worker count, or a strategy parameter is
/// invalid.
pub fn partition_indices(
    dataset: &Dataset,
    workers: usize,
    strategy: Partition,
    seed: u64,
) -> Result<Vec<Vec<usize>>> {
    if workers == 0 {
        return Err(DatasetError::Io("cannot partition across 0 workers".into()));
    }
    if dataset.len() < workers {
        return Err(DatasetError::Io(format!(
            "{} examples cannot cover {workers} workers",
            dataset.len()
        )));
    }
    let mut rng = TensorRng::new(seed ^ 0xD1E7);
    let mut shards: Vec<Vec<usize>> = vec![Vec::new(); workers];
    match strategy {
        Partition::Iid => {
            let mut idx: Vec<usize> = (0..dataset.len()).collect();
            rng.shuffle(&mut idx);
            for (i, example) in idx.into_iter().enumerate() {
                shards[i % workers].push(example);
            }
        }
        Partition::Dirichlet { alpha } => {
            if alpha <= 0.0 {
                return Err(DatasetError::Io("dirichlet alpha must be > 0".into()));
            }
            let classes = dataset.num_classes();
            // indices per class
            let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); classes];
            for (i, &l) in dataset.labels().iter().enumerate() {
                per_class[l].push(i);
            }
            for mut class_idx in per_class {
                rng.shuffle(&mut class_idx);
                let props = sample_dirichlet(alpha as f64, workers, &mut rng);
                // convert proportions to cumulative counts
                let n = class_idx.len();
                let mut start = 0usize;
                let mut acc = 0.0f64;
                for (w, &p) in props.iter().enumerate() {
                    acc += p;
                    let end = if w + 1 == workers {
                        n
                    } else {
                        ((acc * n as f64).round() as usize).min(n)
                    };
                    shards[w].extend(&class_idx[start..end.max(start)]);
                    start = end.max(start);
                }
            }
        }
        Partition::Shards { classes_per_worker } => {
            if classes_per_worker == 0 {
                return Err(DatasetError::Io("classes_per_worker must be >= 1".into()));
            }
            let classes = dataset.num_classes();
            // worker w owns classes {w*cpw, ...} mod classes
            for (i, &l) in dataset.labels().iter().enumerate() {
                // find workers whose class set contains l; round-robin among them
                let owners: Vec<usize> = (0..workers)
                    .filter(|&w| {
                        (0..classes_per_worker).any(|k| (w * classes_per_worker + k) % classes == l)
                    })
                    .collect();
                let w = if owners.is_empty() {
                    i % workers
                } else {
                    owners[i % owners.len()]
                };
                shards[w].push(i);
            }
        }
    }
    // Guarantee non-empty shards: steal from the largest.
    for w in 0..workers {
        if shards[w].is_empty() {
            let donor = (0..workers)
                .max_by_key(|&d| shards[d].len())
                .expect("workers > 0");
            if shards[donor].len() > 1 {
                let moved = shards[donor].pop().expect("non-empty donor");
                shards[w].push(moved);
            }
        }
    }
    Ok(shards)
}

/// Materialises each shard as its own [`Dataset`].
///
/// # Errors
///
/// Same conditions as [`partition_indices`], plus tensor errors.
pub fn partition_dataset(
    dataset: &Dataset,
    workers: usize,
    strategy: Partition,
    seed: u64,
) -> Result<Vec<Dataset>> {
    let shards = partition_indices(dataset, workers, strategy, seed)?;
    shards
        .into_iter()
        .map(|idx| {
            let (x, y) = dataset.batch(&idx)?;
            Dataset::new(x, y, dataset.num_classes())
        })
        .collect()
}

/// Label-skew measure: mean total-variation distance between each shard's
/// label distribution and the global one (0 = perfectly IID, →1 = fully
/// skewed).
pub fn label_skew(dataset: &Dataset, shards: &[Vec<usize>]) -> f32 {
    let classes = dataset.num_classes();
    let global = {
        let hist = dataset.class_histogram();
        let n = dataset.len() as f32;
        hist.into_iter().map(|c| c as f32 / n).collect::<Vec<_>>()
    };
    let labels = dataset.labels();
    let mut total = 0.0f32;
    let mut counted = 0usize;
    for shard in shards {
        if shard.is_empty() {
            continue;
        }
        let mut hist = vec![0f32; classes];
        for &i in shard {
            hist[labels[i]] += 1.0;
        }
        let n = shard.len() as f32;
        let tv: f32 = hist
            .iter()
            .zip(&global)
            .map(|(h, g)| (h / n - g).abs())
            .sum::<f32>()
            / 2.0;
        total += tv;
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{synthetic_cifar, SyntheticConfig};

    fn data(n: usize) -> Dataset {
        synthetic_cifar(&SyntheticConfig {
            train: n,
            test: 0,
            side: 8,
            ..Default::default()
        })
        .unwrap()
        .0
    }

    #[test]
    fn iid_covers_every_example_once() {
        let d = data(100);
        let shards = partition_indices(&d, 7, Partition::Iid, 0).unwrap();
        let mut all: Vec<usize> = shards.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn iid_is_balanced() {
        let d = data(100);
        let shards = partition_indices(&d, 4, Partition::Iid, 1).unwrap();
        for s in &shards {
            assert_eq!(s.len(), 25);
        }
    }

    #[test]
    fn iid_has_low_skew() {
        let d = data(400);
        let shards = partition_indices(&d, 4, Partition::Iid, 2).unwrap();
        assert!(label_skew(&d, &shards) < 0.15);
    }

    #[test]
    fn dirichlet_small_alpha_is_skewed() {
        let d = data(400);
        let iid = partition_indices(&d, 8, Partition::Iid, 3).unwrap();
        let skewed = partition_indices(&d, 8, Partition::Dirichlet { alpha: 0.1 }, 3).unwrap();
        assert!(
            label_skew(&d, &skewed) > label_skew(&d, &iid) + 0.2,
            "α=0.1 should skew much more than IID: {} vs {}",
            label_skew(&d, &skewed),
            label_skew(&d, &iid)
        );
        // still a partition
        let mut all: Vec<usize> = skewed.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all.len(), 400);
    }

    #[test]
    fn dirichlet_large_alpha_approaches_iid() {
        let d = data(400);
        let near_iid = partition_indices(&d, 8, Partition::Dirichlet { alpha: 100.0 }, 4).unwrap();
        assert!(label_skew(&d, &near_iid) < 0.25);
    }

    #[test]
    fn shards_limit_classes_per_worker() {
        let d = data(400);
        let shards = partition_indices(
            &d,
            10,
            Partition::Shards {
                classes_per_worker: 1,
            },
            5,
        )
        .unwrap();
        for (w, shard) in shards.iter().enumerate() {
            let mut classes: Vec<usize> = shard.iter().map(|&i| d.labels()[i]).collect();
            classes.sort_unstable();
            classes.dedup();
            assert!(
                classes.len() <= 2,
                "worker {w} holds classes {classes:?} (1 owned + at most 1 stolen)"
            );
        }
    }

    #[test]
    fn no_empty_shards() {
        let d = data(60);
        for strategy in [
            Partition::Iid,
            Partition::Dirichlet { alpha: 0.05 },
            Partition::Shards {
                classes_per_worker: 2,
            },
        ] {
            let shards = partition_indices(&d, 6, strategy, 6).unwrap();
            for (i, s) in shards.iter().enumerate() {
                assert!(!s.is_empty(), "shard {i} empty under {strategy:?}");
            }
        }
    }

    #[test]
    fn rejects_bad_configs() {
        let d = data(10);
        assert!(partition_indices(&d, 0, Partition::Iid, 0).is_err());
        assert!(partition_indices(&d, 11, Partition::Iid, 0).is_err());
        assert!(partition_indices(&d, 2, Partition::Dirichlet { alpha: 0.0 }, 0).is_err());
        assert!(partition_indices(
            &d,
            2,
            Partition::Shards {
                classes_per_worker: 0
            },
            0
        )
        .is_err());
    }

    #[test]
    fn partition_dataset_materialises_shards() {
        let d = data(40);
        let sets = partition_dataset(&d, 4, Partition::Iid, 7).unwrap();
        assert_eq!(sets.len(), 4);
        let total: usize = sets.iter().map(Dataset::len).sum();
        assert_eq!(total, 40);
        for s in &sets {
            assert_eq!(s.num_classes(), 10);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let d = data(80);
        let a = partition_indices(&d, 5, Partition::Dirichlet { alpha: 0.5 }, 9).unwrap();
        let b = partition_indices(&d, 5, Partition::Dirichlet { alpha: 0.5 }, 9).unwrap();
        assert_eq!(a, b);
        let c = partition_indices(&d, 5, Partition::Dirichlet { alpha: 0.5 }, 10).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn gamma_sampler_mean_is_shape() {
        let mut rng = TensorRng::new(11);
        let n = 5000;
        for shape in [0.5f64, 1.0, 3.0] {
            let mean: f64 = (0..n).map(|_| sample_gamma(shape, &mut rng)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < 0.15 * shape.max(1.0),
                "Gamma({shape}) sample mean {mean}"
            );
        }
    }
}
