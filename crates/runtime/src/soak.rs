//! Long-soak endurance mode: thousands of rounds on the threaded runtime
//! under rolling worker churn, with live counters and a JSON-serialisable
//! final report (DESIGN.md §8).
//!
//! The deterministic engines prove the protocol correct round by round;
//! the soak asks a different question — does the *deployment* survive
//! hours of churn without leaking threads, wedging quorums, or dropping
//! sends it should not drop? Churn is injected below the protocol, as a
//! [`Transport`] decorator that drops frames to/from the current victim
//! worker, so both interconnects ([`TransportKind::Channel`] and
//! [`TransportKind::TcpLoopback`]) soak identically.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use data::Dataset;
use guanyu::GuanYuError;
use nn::Sequential;
use serde::{Deserialize, Serialize};
use tensor::TensorRng;

use crate::cluster::{run_cluster_with, RunHooks, RuntimeConfig};
use crate::pool::PoolStats;
use crate::transport::{Incoming, RecvError, Transport};
use crate::wire::WireMsg;

/// Live counters shared between the soak run and any monitor thread.
///
/// Node threads bump these with relaxed atomics (no ordering is needed —
/// each counter is an independent statistic, not a synchronisation point).
#[derive(Debug, Default)]
pub struct SoakCounters {
    /// Rounds completed by server 0 (the progress clock of the run).
    pub rounds: AtomicU64,
    /// Frames suppressed by the churn decorator.
    pub churn_drops: AtomicU64,
    /// Worker fast-forward recoveries (a worker that lost rounds to churn
    /// rejoined at the newest quorate step).
    pub recoveries: AtomicU64,
    /// Transport-level sends that found their peer gone, folded in when
    /// node threads exit.
    pub dropped_sends: AtomicU64,
}

impl SoakCounters {
    /// A point-in-time snapshot (for the live monitor line).
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.rounds.load(Ordering::Relaxed),
            self.churn_drops.load(Ordering::Relaxed),
            self.recoveries.load(Ordering::Relaxed),
            self.dropped_sends.load(Ordering::Relaxed),
        )
    }
}

/// Rolling churn: at round `r` the worker `(r / period) % pool` (counting
/// from the first worker) is down — its frames are dropped in both
/// directions. The victim rolls through the pool forever, so every pool
/// member keeps crashing and recovering for the whole soak.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnSpec {
    /// Rounds between victim moves (≥ 1).
    pub period: u64,
    /// Number of workers cycling through the down slot (≥ 1).
    pub pool: usize,
}

/// Configuration of a soak run.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// The threaded run to endure: `max_steps` is the round budget and
    /// `wall_timeout` the abort safety net.
    pub runtime: RuntimeConfig,
    /// Rolling churn, or `None` for a clean endurance run (which must
    /// drop nothing — the CI smoke asserts it).
    pub churn: Option<ChurnSpec>,
}

/// What a finished (or aborted) soak reports.
#[derive(Debug, Clone, Serialize)]
pub struct SoakReport {
    /// Interconnect label (`channel` / `tcp`).
    pub transport: String,
    /// Cluster shape: servers.
    pub servers: usize,
    /// Cluster shape: workers.
    pub workers: usize,
    /// Round budget of the run.
    pub max_steps: u64,
    /// Churn spec, if any.
    pub churn: Option<ChurnSpec>,
    /// Rounds server 0 completed.
    pub rounds: u64,
    /// Wall-clock duration.
    pub wall_secs: f64,
    /// Throughput (`rounds / wall_secs`).
    pub rounds_per_sec: f64,
    /// Frames the churn decorator suppressed.
    pub churn_drops: u64,
    /// Worker fast-forward recoveries.
    pub recoveries: u64,
    /// Transport-level drops (peer already gone).
    pub dropped_sends: u64,
    /// Mesh-shared frame-pool counters (zeros when the run timed out —
    /// the abort path carries no report to snapshot them from).
    pub pool: PoolStats,
    /// Whether the wall timeout aborted the run.
    pub timed_out: bool,
    /// Trace fingerprint of the completed run (absent on timeout).
    pub trace_fingerprint: Option<u64>,
}

/// Transport decorator dropping frames to and from the churn victim.
///
/// The victim for a frame is derived from the *step carried in the frame*
/// ([`WireMsg::step`]), not from wall time — filtering is sender-side and
/// needs no decode, and the drop pattern is a pure function of the
/// protocol round on every transport.
struct ChurnTransport {
    inner: Box<dyn Transport>,
    servers: usize,
    spec: ChurnSpec,
    counters: Arc<SoakCounters>,
}

impl ChurnTransport {
    fn victim(&self, step: u64) -> usize {
        self.servers + ((step / self.spec.period) as usize % self.spec.pool)
    }

    fn down(&self, node: usize, step: u64) -> bool {
        node == self.victim(step)
    }
}

impl Transport for ChurnTransport {
    fn me(&self) -> usize {
        self.inner.me()
    }

    fn send(&mut self, to: usize, msg: &WireMsg) {
        let step = msg.step();
        if self.down(to, step) || self.down(self.me(), step) {
            self.counters.churn_drops.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.inner.send(to, msg);
    }

    fn broadcast(&mut self, targets: &[usize], msg: &WireMsg) {
        let step = msg.step();
        if self.down(self.me(), step) {
            self.counters
                .churn_drops
                .fetch_add(targets.len() as u64, Ordering::Relaxed);
            return;
        }
        let keep: Vec<usize> = targets
            .iter()
            .copied()
            .filter(|&t| !self.down(t, step))
            .collect();
        let dropped = (targets.len() - keep.len()) as u64;
        if dropped > 0 {
            self.counters
                .churn_drops
                .fetch_add(dropped, Ordering::Relaxed);
        }
        if !keep.is_empty() {
            self.inner.broadcast(&keep, msg);
        }
    }

    fn broadcast_range(&mut self, targets: &[usize], msg: &WireMsg, range: std::ops::Range<usize>) {
        // Same victim filter as `broadcast`, then the zero-copy scatter of
        // the inner engine (the default materialising fallback would also
        // be correct, just slower).
        let step = msg.step();
        if self.down(self.me(), step) {
            self.counters
                .churn_drops
                .fetch_add(targets.len() as u64, Ordering::Relaxed);
            return;
        }
        let keep: Vec<usize> = targets
            .iter()
            .copied()
            .filter(|&t| !self.down(t, step))
            .collect();
        let dropped = (targets.len() - keep.len()) as u64;
        if dropped > 0 {
            self.counters
                .churn_drops
                .fetch_add(dropped, Ordering::Relaxed);
        }
        if !keep.is_empty() {
            self.inner.broadcast_range(&keep, msg, range);
        }
    }

    fn pool_stats(&self) -> PoolStats {
        self.inner.pool_stats()
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Incoming, RecvError> {
        self.inner.recv_timeout(timeout)
    }

    fn dropped_sends(&self) -> u64 {
        self.inner.dropped_sends()
    }

    fn link_failures(&self) -> u64 {
        self.inner.link_failures()
    }

    fn shutdown(&mut self) {
        self.inner.shutdown();
    }
}

fn validate(cfg: &SoakConfig) -> Result<(), GuanYuError> {
    let Some(churn) = cfg.churn else {
        return Ok(());
    };
    let c = &cfg.runtime.cluster;
    if churn.period == 0 || churn.pool == 0 {
        return Err(GuanYuError::InvalidConfig(
            "churn period and pool must be >= 1".into(),
        ));
    }
    let honest = c.workers - cfg.runtime.actual_byz_workers;
    if churn.pool > honest {
        return Err(GuanYuError::InvalidConfig(format!(
            "churn pool {} exceeds the {honest} honest workers",
            churn.pool
        )));
    }
    // With one worker down, the gradient quorum must still be fillable —
    // otherwise every round wedges until the wall timeout.
    if c.workers - 1 < c.worker_quorum {
        return Err(GuanYuError::InvalidConfig(format!(
            "churn with worker quorum {} needs at least {} workers (one is always down)",
            c.worker_quorum,
            c.worker_quorum + 1
        )));
    }
    Ok(())
}

/// Runs the soak with caller-owned counters, so a monitor thread can read
/// them live while the cluster runs.
///
/// Churn implies `recovery = true` (victims must fast-forward past the
/// rounds they lost, or they stall forever and the run wedges).
///
/// # Errors
///
/// Invalid configurations and transport build failures. A wall-timeout
/// abort is *not* an error: the soak's job is to report it
/// ([`SoakReport::timed_out`]).
pub fn run_soak_with(
    cfg: &SoakConfig,
    model_builder: impl Fn(&mut TensorRng) -> Sequential,
    train: Dataset,
    counters: Arc<SoakCounters>,
) -> Result<SoakReport, GuanYuError> {
    validate(cfg)?;
    let mut runtime = cfg.runtime.clone();
    if cfg.churn.is_some() {
        runtime.recovery = true;
    }
    let hooks = RunHooks {
        wrap: cfg.churn.map(|spec| {
            // With k shard groups the server plane occupies raw ids
            // 0..k*servers; workers start right after it.
            let servers = runtime.cluster.servers * runtime.shards.max(1);
            let counters = Arc::clone(&counters);
            Arc::new(move |_id: usize, inner: Box<dyn Transport>| {
                Box::new(ChurnTransport {
                    inner,
                    servers,
                    spec,
                    counters: Arc::clone(&counters),
                }) as Box<dyn Transport>
            })
                as Arc<dyn Fn(usize, Box<dyn Transport>) -> Box<dyn Transport> + Send + Sync>
        }),
        counters: Arc::clone(&counters),
    };
    let start = std::time::Instant::now();
    let outcome = run_cluster_with(&runtime, model_builder, train, hooks);
    let wall_secs = start.elapsed().as_secs_f64();
    let (rounds, churn_drops, recoveries, dropped_sends) = counters.snapshot();
    let (timed_out, trace_fingerprint, pool) = match outcome {
        Ok(report) => (false, Some(report.trace.fingerprint()), report.pool),
        Err(GuanYuError::InvalidConfig(msg)) if msg.contains("wall timeout") => {
            (true, None, PoolStats::default())
        }
        Err(e) => return Err(e),
    };
    Ok(SoakReport {
        transport: runtime.transport.to_string(),
        servers: runtime.cluster.servers,
        workers: runtime.cluster.workers,
        max_steps: runtime.max_steps,
        churn: cfg.churn,
        rounds,
        wall_secs,
        rounds_per_sec: if wall_secs > 0.0 {
            rounds as f64 / wall_secs
        } else {
            0.0
        },
        churn_drops,
        recoveries,
        dropped_sends,
        pool,
        timed_out,
        trace_fingerprint,
    })
}

/// Runs the soak with internal counters (no live monitoring).
///
/// # Errors
///
/// See [`run_soak_with`].
pub fn run_soak(
    cfg: &SoakConfig,
    model_builder: impl Fn(&mut TensorRng) -> Sequential,
    train: Dataset,
) -> Result<SoakReport, GuanYuError> {
    run_soak_with(cfg, model_builder, train, Arc::new(SoakCounters::default()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use data::{synthetic_cifar, SyntheticConfig};
    use guanyu::config::ClusterConfig;
    use nn::models;

    fn train_data() -> Dataset {
        synthetic_cifar(&SyntheticConfig {
            train: 64,
            test: 0,
            side: 8,
            ..Default::default()
        })
        .unwrap()
        .0
    }

    fn builder(rng: &mut TensorRng) -> Sequential {
        models::small_cnn(8, 2, 10, rng)
    }

    #[test]
    fn clean_soak_drops_nothing() {
        // Full quorums: the run is lossless, so every counter that tracks
        // a loss must end at zero.
        let cfg = SoakConfig {
            runtime: RuntimeConfig {
                cluster: ClusterConfig::with_quorums(3, 0, 4, 0, 3, 4).unwrap(),
                max_steps: 5,
                ..RuntimeConfig::default_for_tests()
            },
            churn: None,
        };
        let report = run_soak(&cfg, builder, train_data()).unwrap();
        assert!(!report.timed_out);
        assert_eq!(report.rounds, 5);
        assert!(
            report.pool.fresh > 0 && report.pool.high_water > 0,
            "pool counters must surface in the report: {:?}",
            report.pool
        );
        assert_eq!(report.churn_drops, 0);
        assert_eq!(report.recoveries, 0);
        assert_eq!(report.dropped_sends, 0, "clean soak must not drop sends");
        assert!(report.trace_fingerprint.is_some());
        assert!(report.rounds_per_sec > 0.0);
    }

    #[test]
    fn churn_soak_survives_and_recovers() {
        let cfg = SoakConfig {
            runtime: RuntimeConfig {
                cluster: ClusterConfig::new(6, 1, 9, 2).unwrap(),
                max_steps: 12,
                wall_timeout: Duration::from_secs(120),
                ..RuntimeConfig::default_for_tests()
            },
            churn: Some(ChurnSpec { period: 2, pool: 3 }),
        };
        let report = run_soak(&cfg, builder, train_data()).unwrap();
        assert!(!report.timed_out, "churned soak must still make progress");
        assert_eq!(report.rounds, 12);
        assert!(report.churn_drops > 0, "the victim's frames must be cut");
    }

    #[test]
    fn rejects_unfillable_churn_quorums() {
        // worker quorum == workers: one victim down leaves the quorum
        // unfillable, which would wedge every round.
        let cfg = SoakConfig {
            runtime: RuntimeConfig {
                cluster: ClusterConfig::with_quorums(3, 0, 4, 0, 3, 4).unwrap(),
                ..RuntimeConfig::default_for_tests()
            },
            churn: Some(ChurnSpec { period: 1, pool: 2 }),
        };
        assert!(run_soak(&cfg, builder, train_data()).is_err());
    }

    #[test]
    fn soak_report_serialises() {
        let report = SoakReport {
            transport: "channel".into(),
            servers: 3,
            workers: 4,
            max_steps: 5,
            churn: Some(ChurnSpec { period: 1, pool: 2 }),
            rounds: 5,
            wall_secs: 1.0,
            rounds_per_sec: 5.0,
            churn_drops: 7,
            recoveries: 2,
            dropped_sends: 0,
            pool: PoolStats {
                fresh: 3,
                recycled: 11,
                high_water: 2,
            },
            timed_out: false,
            trace_fingerprint: Some(42),
        };
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"rounds_per_sec\""), "{json}");
        assert!(json.contains("\"pool\""), "{json}");
        assert!(json.contains("\"high_water\":2"), "{json}");
    }
}
