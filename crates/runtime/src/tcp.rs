//! Real TCP loopback transport: length-prefixed frames over `std::net`
//! sockets.
//!
//! This is the cross-process-shaped engine (DESIGN.md §7): every byte of
//! every model and gradient really crosses the kernel's TCP stack, so the
//! serialization *and* socket path the paper's §5.3 measures are both
//! genuinely exercised. The topology is a dialled mesh over
//! `127.0.0.1:0` ephemeral ports:
//!
//! * **Handshake** — the dialler opens one connection per directed link
//!   and writes `[MAGIC: u32][from: u32]` before anything else; the
//!   acceptor reads it to learn the peer's node id (the id receivers use
//!   for canonical-order quorum folds). A bad magic aborts mesh
//!   construction.
//! * **Framing** — each frame travels as `[nbytes: u32][frame bytes]`,
//!   re-assembled by [`wire::StreamDecoder`](crate::wire::StreamDecoder)
//!   with its hard size cap. A poisoned stream (over-cap prefix) is
//!   closed, Byzantine-peer style; individual malformed *frames* are
//!   passed up and dropped by the node thread, exactly as on the channel
//!   transport.
//! * **Writer threads** — one per outgoing link, fed by an in-process
//!   queue of `Arc`-shared encoded frames: a broadcast encodes once, and
//!   a peer stalled in TCP backpressure delays only its own writer, never
//!   the sender's protocol loop.
//! * **Reader threads** — one per incoming link, pumping decoded-length
//!   frames into the endpoint's single inbox.
//! * **Shutdown** — closing the endpoint drops the writer queues (each
//!   writer drains what is already queued, then half-closes its socket so
//!   the peer's reader sees EOF), flags the readers, and **joins every
//!   thread** — a completed run leaks nothing.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::transport::{Incoming, RecvError, Transport};
use crate::wire::{encode, prefix_frame, StreamDecoder, WireMsg};

/// Handshake magic ("GUAN").
const MAGIC: u32 = 0x4755_414E;

/// Poll interval for reader threads checking the stop flag.
const IO_POLL: Duration = Duration::from_millis(20);

/// One node's endpoint on the TCP mesh.
pub struct TcpTransport {
    me: usize,
    /// Per-peer writer queues (`None`: no link, or already shut down).
    writers: Vec<Option<Sender<Arc<Vec<u8>>>>>,
    inbox: Receiver<Incoming>,
    /// Frames a writer thread failed to put on the wire.
    wire_dropped: Arc<AtomicU64>,
    /// Sends with no live link to carry them.
    local_dropped: u64,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl TcpTransport {
    /// Builds a loopback mesh of `n` endpoints. `link(a, b)` says whether
    /// node `a` may send to node `b`; a full mesh is `|_, _| true`, and
    /// sparser topologies (e.g. no worker↔worker links — the GuanYu
    /// protocol never uses them) save sockets and I/O threads.
    ///
    /// # Errors
    ///
    /// Any socket-layer failure (bind, connect, accept, handshake).
    pub fn mesh(
        n: usize,
        link: impl Fn(usize, usize) -> bool,
    ) -> std::io::Result<Vec<TcpTransport>> {
        // One listener per node on an ephemeral loopback port.
        let mut listeners = Vec::with_capacity(n);
        let mut addrs: Vec<SocketAddr> = Vec::with_capacity(n);
        for _ in 0..n {
            let l = TcpListener::bind(("127.0.0.1", 0))?;
            addrs.push(l.local_addr()?);
            listeners.push(l);
        }

        // Dial every directed link, announcing the dialler's id. The
        // connections sit in the listeners' accept backlogs until
        // collected below (handshake bytes wait in socket buffers).
        // Materialise the topology once: the dialler thread below must not
        // borrow the (non-`'static`) predicate.
        let links: Vec<Vec<bool>> = (0..n)
            .map(|from| (0..n).map(|to| from != to && link(from, to)).collect())
            .collect();

        // Dial every directed link on a helper thread, announcing the
        // dialler's id, while this thread accepts. Dialling and accepting
        // run concurrently, so no listener's accept backlog can fill up
        // and deadlock construction, however dense the topology.
        let dialler = {
            let links = links.clone();
            let addrs = addrs.clone();
            std::thread::Builder::new()
                .name("tcp-mesh-dial".into())
                .spawn(move || -> std::io::Result<Vec<Vec<(usize, TcpStream)>>> {
                    let mut outgoing: Vec<Vec<(usize, TcpStream)>> =
                        (0..n).map(|_| Vec::new()).collect();
                    for (from, dialled) in outgoing.iter_mut().enumerate() {
                        for (to, addr) in addrs.iter().enumerate() {
                            if !links[from][to] {
                                continue;
                            }
                            let mut s = TcpStream::connect(addr)?;
                            s.set_nodelay(true)?;
                            let mut hello = [0u8; 8];
                            hello[..4].copy_from_slice(&MAGIC.to_le_bytes());
                            hello[4..].copy_from_slice(&(from as u32).to_le_bytes());
                            s.write_all(&hello)?;
                            dialled.push((to, s));
                        }
                    }
                    Ok(outgoing)
                })?
        };

        // Accept every inbound link and identify the dialler. Listeners
        // poll non-blockingly so a dialler failure surfaces as an error
        // here instead of an accept that waits forever.
        let accepted = (|| -> std::io::Result<Vec<Vec<(usize, TcpStream)>>> {
            let mut incoming: Vec<Vec<(usize, TcpStream)>> = (0..n).map(|_| Vec::new()).collect();
            for (to, listener) in listeners.iter().enumerate() {
                listener.set_nonblocking(true)?;
                let expected = (0..n).filter(|&from| links[from][to]).count();
                while incoming[to].len() < expected {
                    let (mut s, _) = match listener.accept() {
                        Ok(conn) => conn,
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            if dialler.is_finished() {
                                // Dialling ended (necessarily in error —
                                // success implies every link was dialled);
                                // stop so the join below reports it.
                                return Err(std::io::Error::new(
                                    std::io::ErrorKind::ConnectionAborted,
                                    "dialler exited before all links connected",
                                ));
                            }
                            std::thread::sleep(Duration::from_millis(2));
                            continue;
                        }
                        Err(e) => return Err(e),
                    };
                    // Not inherited from the listener on all platforms.
                    s.set_nonblocking(false)?;
                    s.set_nodelay(true)?;
                    let mut hello = [0u8; 8];
                    s.read_exact(&mut hello)?;
                    let magic = u32::from_le_bytes(hello[..4].try_into().expect("4 bytes"));
                    if magic != MAGIC {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            "bad handshake magic",
                        ));
                    }
                    let from = u32::from_le_bytes(hello[4..].try_into().expect("4 bytes")) as usize;
                    if from >= n || !links[from][to] {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("handshake from unexpected peer {from}"),
                        ));
                    }
                    incoming[to].push((from, s));
                }
            }
            Ok(incoming)
        })();
        let dialled = dialler
            .join()
            .map_err(|_| std::io::Error::other("dialler thread panicked"))?;
        // A dial error is the root cause; report it ahead of the accept
        // error it induced.
        let outgoing = dialled?;
        let incoming = accepted?;

        // Assemble the endpoints: writer thread per outgoing link, reader
        // thread per incoming link, one inbox per node.
        let mut endpoints = Vec::with_capacity(n);
        for (me, (out, inc)) in outgoing.into_iter().zip(incoming).enumerate() {
            let (inbox_tx, inbox) = channel::<Incoming>();
            let wire_dropped = Arc::new(AtomicU64::new(0));
            let stop = Arc::new(AtomicBool::new(false));
            let mut writers: Vec<Option<Sender<Arc<Vec<u8>>>>> = (0..n).map(|_| None).collect();
            let mut threads = Vec::new();
            for (to, stream) in out {
                let (tx, rx) = channel::<Arc<Vec<u8>>>();
                writers[to] = Some(tx);
                let dropped = Arc::clone(&wire_dropped);
                let t = std::thread::Builder::new()
                    .name(format!("tcp-w{me}>{to}"))
                    .spawn(move || writer_loop(stream, rx, dropped))?;
                threads.push(t);
            }
            for (from, stream) in inc {
                let tx = inbox_tx.clone();
                let stop = Arc::clone(&stop);
                let t = std::thread::Builder::new()
                    .name(format!("tcp-r{me}<{from}"))
                    .spawn(move || reader_loop(stream, from, tx, stop))?;
                threads.push(t);
            }
            endpoints.push(TcpTransport {
                me,
                writers,
                inbox,
                wire_dropped,
                local_dropped: 0,
                stop,
                threads,
            });
        }
        Ok(endpoints)
    }

    fn send_frame(&mut self, to: usize, frame: Arc<Vec<u8>>) {
        match self.writers.get(to).and_then(|w| w.as_ref()) {
            Some(tx) if tx.send(frame).is_ok() => {}
            // No link, or the writer already exited: count the drop.
            _ => self.local_dropped += 1,
        }
    }
}

impl Transport for TcpTransport {
    fn me(&self) -> usize {
        self.me
    }

    fn send(&mut self, to: usize, msg: &WireMsg) {
        self.send_frame(to, Arc::new(encode(msg)));
    }

    fn broadcast(&mut self, targets: &[usize], msg: &WireMsg) {
        let frame = Arc::new(encode(msg));
        for &to in targets {
            self.send_frame(to, Arc::clone(&frame));
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Incoming, RecvError> {
        match self.inbox.recv_timeout(timeout) {
            Ok(i) => Ok(i),
            Err(RecvTimeoutError::Timeout) => Err(RecvError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(RecvError::Closed),
        }
    }

    fn dropped_sends(&self) -> u64 {
        self.local_dropped + self.wire_dropped.load(Ordering::Relaxed)
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Dropping the queues lets each writer drain what is already
        // queued, half-close its socket, and exit.
        for w in &mut self.writers {
            *w = None;
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Pumps queued frames onto one socket, length-prefixed. Exits when the
/// queue closes (endpoint shutdown); a broken socket marks every
/// subsequent frame dropped rather than aborting the node.
fn writer_loop(mut stream: TcpStream, rx: Receiver<Arc<Vec<u8>>>, dropped: Arc<AtomicU64>) {
    let mut broken = false;
    // Prefix + frame go out as one write (one TCP segment under NODELAY);
    // the scratch buffer's allocation is reused across frames.
    let mut prefixed = Vec::new();
    while let Ok(frame) = rx.recv() {
        if !broken {
            prefix_frame(&frame, &mut prefixed);
            if stream.write_all(&prefixed).is_ok() {
                continue;
            }
            broken = true;
        }
        dropped.fetch_add(1, Ordering::Relaxed);
    }
    // Half-close: the peer's reader sees EOF and stops promptly.
    let _ = stream.shutdown(Shutdown::Write);
}

/// Re-assembles length-prefixed frames from one socket and pushes them
/// into the owning endpoint's inbox. Exits on EOF, stop flag, socket
/// error, a poisoned stream (over-cap prefix — Byzantine peer), or an
/// inbox that is no longer read.
fn reader_loop(mut stream: TcpStream, from: usize, inbox: Sender<Incoming>, stop: Arc<AtomicBool>) {
    // Reads time out so the stop flag is observed even on a silent link.
    if stream.set_read_timeout(Some(IO_POLL)).is_err() {
        return;
    }
    let mut decoder = StreamDecoder::new();
    let mut chunk = vec![0u8; 64 * 1024];
    while !stop.load(Ordering::Relaxed) {
        let got = match stream.read(&mut chunk) {
            Ok(0) => return, // EOF: peer closed
            Ok(k) => k,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue
            }
            Err(_) => return,
        };
        decoder.extend(&chunk[..got]);
        loop {
            match decoder.next_frame() {
                Ok(Some(frame)) => {
                    let incoming = Incoming {
                        from,
                        payload: Arc::new(frame),
                    };
                    if inbox.send(incoming).is_err() {
                        return; // endpoint gone
                    }
                }
                Ok(None) => break, // need more bytes
                Err(_) => {
                    // Unrecoverable framing from a Byzantine peer: sever
                    // the link (frame-level garbage is the node's call).
                    let _ = stream.shutdown(Shutdown::Both);
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::decode;
    use tensor::Tensor;

    fn msg(step: u64, vals: Vec<f32>) -> WireMsg {
        WireMsg::Gradient {
            step,
            grad: Tensor::from_flat(vals),
        }
    }

    #[test]
    fn mesh_routes_and_identifies_senders() {
        let mut mesh = TcpTransport::mesh(3, |_, _| true).unwrap();
        let mut n2 = mesh.pop().unwrap();
        let mut n1 = mesh.pop().unwrap();
        let mut n0 = mesh.pop().unwrap();
        n0.send(2, &msg(7, vec![1.0]));
        n1.send(2, &msg(8, vec![2.0]));
        let mut got = Vec::new();
        for _ in 0..2 {
            let i = n2.recv_timeout(Duration::from_secs(5)).unwrap();
            got.push((i.from, decode(&i.payload).unwrap().step()));
        }
        got.sort_unstable();
        assert_eq!(got, vec![(0, 7), (1, 8)]);
        for t in [&mut n0, &mut n1, &mut n2] {
            t.shutdown();
        }
    }

    #[test]
    fn sparse_mesh_counts_linkless_sends() {
        // Only 0→1 exists.
        let mut mesh = TcpTransport::mesh(2, |a, b| a == 0 && b == 1).unwrap();
        let mut n1 = mesh.pop().unwrap();
        let mut n0 = mesh.pop().unwrap();
        n1.send(0, &msg(0, vec![])); // no such link
        assert_eq!(n1.dropped_sends(), 1);
        n0.send(1, &msg(3, vec![0.5]));
        let i = n1.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(i.from, 0);
        assert_eq!(n0.dropped_sends(), 0);
        n0.shutdown();
        n1.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_joins() {
        let mut mesh = TcpTransport::mesh(2, |_, _| true).unwrap();
        for t in &mut mesh {
            t.shutdown();
            t.shutdown();
            assert!(t.threads.is_empty());
        }
    }

    #[test]
    fn large_frames_cross_the_stream_intact() {
        let mut mesh = TcpTransport::mesh(2, |_, _| true).unwrap();
        let mut n1 = mesh.pop().unwrap();
        let mut n0 = mesh.pop().unwrap();
        // Bigger than one reader chunk (64 KiB), so re-assembly spans reads.
        let vals: Vec<f32> = (0..50_000).map(|i| i as f32 * 0.25).collect();
        n0.broadcast(&[1], &msg(9, vals.clone()));
        let i = n1.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(decode(&i.payload).unwrap(), msg(9, vals));
        n0.shutdown();
        n1.shutdown();
    }
}
