//! Real TCP loopback transport: length-prefixed frames over `std::net`
//! sockets.
//!
//! This is the cross-process-shaped engine (DESIGN.md §7): every byte of
//! every model and gradient really crosses the kernel's TCP stack, so the
//! serialization *and* socket path the paper's §5.3 measures are both
//! genuinely exercised. The topology is a dialled mesh over
//! `127.0.0.1:0` ephemeral ports:
//!
//! * **Handshake** — the dialler opens one connection per directed link
//!   and writes `[MAGIC: u32][from: u32]` before anything else; the
//!   acceptor reads it to learn the peer's node id (the id receivers use
//!   for canonical-order quorum folds). A bad magic aborts mesh
//!   construction.
//! * **Framing** — each frame travels as `[nbytes: u32][frame bytes]`,
//!   re-assembled by [`wire::StreamDecoder`](crate::wire::StreamDecoder)
//!   with its hard size cap. A poisoned stream (over-cap prefix) is
//!   severed and counted ([`Transport::link_failures`]); individual
//!   malformed *frames* are passed up and dropped by the node thread,
//!   exactly as on the channel transport.
//! * **Writer threads** — one per outgoing link, fed by an in-process
//!   queue of `Arc`-shared encoded frames: a broadcast encodes once, and
//!   a peer stalled in TCP backpressure delays only its own writer, never
//!   the sender's protocol loop. Each writer drains its whole queue per
//!   wake-up and flushes the batch through
//!   [`wire::write_frames`](crate::wire::write_frames) — many prefixed
//!   frames per vectored syscall, frame bodies gathered zero-copy.
//! * **Reader plane** — *one* reader thread per node (not per link)
//!   multiplexing every incoming socket through a non-blocking ready-poll
//!   sweep, parked on a readiness [`Waker`] between bursts (the std-only
//!   stand-in for `epoll` readiness): thread count is O(links out) + 1
//!   per node instead of O(n) readers each, and quiet links cost zero
//!   wake-ups and zero speculative syscalls.
//! * **Shutdown** — closing the endpoint drops the writer queues (each
//!   writer drains what is already queued, then half-closes its socket so
//!   the peer's reader sees EOF), flags the reader plane, and **joins
//!   every thread** — a completed run leaks nothing.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::pool::{BufPool, PoolStats};
use crate::transport::{Incoming, RecvError, Transport};
use crate::wire::{encode_range_shared, encode_shared, write_frames, StreamDecoder, WireMsg};

/// Handshake magic ("GUAN").
const MAGIC: u32 = 0x4755_414E;

/// Read-chunk size of the reader plane: one non-blocking read pulls up to
/// this much per socket visit, so a paper-scale frame crosses in a few
/// dozen reads instead of hundreds.
const READ_CHUNK: usize = 256 * 1024;

/// Consecutive reads per socket per sweep before moving on — drains a
/// bursty link without starving its siblings.
const READS_PER_VISIT: usize = 4;

/// Writer batch cap: frames drained from the queue per flush. 64 frames
/// is 128 iovecs, far under Linux's 1024-entry `writev` limit.
const MAX_BATCH: usize = 64;

/// A writer making zero progress for this long is severed (a genuinely
/// wedged peer must not hang shutdown forever).
const WRITE_STALL: Duration = Duration::from_secs(30);

/// Backstop for the reader plane's parked wait. Every event the plane can
/// observe (bytes flushed, peer half-close, severed socket, endpoint
/// shutdown) is accompanied by a waker notification, so this timeout only
/// bounds recovery from a hypothetically missed signal.
const PARK_BACKSTOP: Duration = Duration::from_millis(10);

/// Empty sweeps the reader plane yields through before parking on its
/// waker — an empty sweep reads nothing (only hot links are visited), so
/// this grace loop costs a lock and a flag scan per pass.
const GRACE_YIELDS: u32 = 8;

/// Readiness notification for a node's reader plane — the std-only
/// equivalent of what `epoll` would provide a production implementation
/// for free: a wake-up *plus the ready list*. The mesh is in-process, so a
/// peer's writer *knows* when the kernel has accepted bytes for a
/// destination; it marks its sender id ready and nudges that destination's
/// plane. The plane parks on the condvar between bursts and, once woken,
/// reads only the sockets actually marked — idle links cost zero wake-ups
/// and zero speculative `read` syscalls, and a wake-up for one busy link
/// does not pay an `EAGAIN` on every quiet sibling.
#[derive(Debug)]
struct Waker {
    /// Per-sender ready flags (indexed by wire id) + a sticky "poked" bit
    /// (set by any notification, including id-less shutdown pokes).
    state: Mutex<(Vec<bool>, bool)>,
    cv: Condvar,
}

impl Waker {
    fn new(n: usize) -> Self {
        Waker {
            state: Mutex::new((vec![false; n], false)),
            cv: Condvar::new(),
        }
    }

    /// Number of sender slots (the mesh size this waker was built for).
    fn slots(&self) -> usize {
        self.state.lock().expect("waker lock").0.len()
    }

    /// Marks sender `from` ready and wakes the parked plane (sticky: a
    /// notify during a sweep makes the next park return immediately).
    fn notify_from(&self, from: usize) {
        let mut s = self.state.lock().expect("waker lock");
        s.0[from] = true;
        s.1 = true;
        drop(s);
        self.cv.notify_one();
    }

    /// Wakes the plane without marking a sender (endpoint shutdown: the
    /// plane re-checks its stop flag, no socket needs reading).
    fn poke(&self) {
        self.state.lock().expect("waker lock").1 = true;
        self.cv.notify_one();
    }

    /// Drains pending ready marks into `hot` without blocking.
    fn collect(&self, hot: &mut [bool]) {
        let mut s = self.state.lock().expect("waker lock");
        if !s.1 {
            return;
        }
        s.1 = false;
        for (h, r) in hot.iter_mut().zip(s.0.iter_mut()) {
            *h |= std::mem::take(r);
        }
    }

    /// Parks until notified (or `timeout` as a missed-signal backstop),
    /// then drains ready marks into `hot`. Returns `false` on a pure
    /// timeout — the caller should do one full sweep to resynchronise.
    fn park_collect(&self, hot: &mut [bool], timeout: Duration) -> bool {
        let mut s = self.state.lock().expect("waker lock");
        if !s.1 {
            s = self.cv.wait_timeout(s, timeout).expect("waker lock").0;
        }
        let poked = s.1;
        s.1 = false;
        for (h, r) in hot.iter_mut().zip(s.0.iter_mut()) {
            *h |= std::mem::take(r);
        }
        poked
    }
}

/// One node's endpoint on the TCP mesh.
pub struct TcpTransport {
    me: usize,
    /// Per-peer writer queues (`None`: no link, or already shut down).
    writers: Vec<Option<Sender<Arc<[u8]>>>>,
    inbox: Receiver<Incoming>,
    /// Encode-scratch recycling, shared by every endpoint of the mesh.
    pool: Arc<BufPool>,
    /// Frames a writer thread failed to put on the wire.
    wire_dropped: Arc<AtomicU64>,
    /// Sends with no live link to carry them.
    local_dropped: u64,
    /// Links severed abnormally (poisoned stream, socket error, stalled
    /// writer) — EOF from a cleanly departing peer does not count.
    failures: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    /// This endpoint's own reader-plane waker (shutdown nudges it so the
    /// plane observes the stop flag immediately instead of at the backstop).
    waker: Arc<Waker>,
    threads: Vec<JoinHandle<()>>,
}

impl TcpTransport {
    /// Builds a loopback mesh of `n` endpoints. `link(a, b)` says whether
    /// node `a` may send to node `b`; a full mesh is `|_, _| true`, and
    /// sparser topologies (e.g. no worker↔worker links — the GuanYu
    /// protocol never uses them) save sockets and I/O threads.
    ///
    /// # Errors
    ///
    /// Any socket-layer failure (bind, connect, accept, handshake).
    pub fn mesh(
        n: usize,
        link: impl Fn(usize, usize) -> bool,
    ) -> std::io::Result<Vec<TcpTransport>> {
        // One listener per node on an ephemeral loopback port.
        let mut listeners = Vec::with_capacity(n);
        let mut addrs: Vec<SocketAddr> = Vec::with_capacity(n);
        for _ in 0..n {
            let l = TcpListener::bind(("127.0.0.1", 0))?;
            addrs.push(l.local_addr()?);
            listeners.push(l);
        }

        // Dial every directed link, announcing the dialler's id. The
        // connections sit in the listeners' accept backlogs until
        // collected below (handshake bytes wait in socket buffers).
        // Materialise the topology once: the dialler thread below must not
        // borrow the (non-`'static`) predicate.
        let links: Vec<Vec<bool>> = (0..n)
            .map(|from| (0..n).map(|to| from != to && link(from, to)).collect())
            .collect();

        // Dial every directed link on a helper thread, announcing the
        // dialler's id, while this thread accepts. Dialling and accepting
        // run concurrently, so no listener's accept backlog can fill up
        // and deadlock construction, however dense the topology.
        let dialler = {
            let links = links.clone();
            let addrs = addrs.clone();
            std::thread::Builder::new()
                .name("tcp-mesh-dial".into())
                .spawn(move || -> std::io::Result<Vec<Vec<(usize, TcpStream)>>> {
                    let mut outgoing: Vec<Vec<(usize, TcpStream)>> =
                        (0..n).map(|_| Vec::new()).collect();
                    for (from, dialled) in outgoing.iter_mut().enumerate() {
                        for (to, addr) in addrs.iter().enumerate() {
                            if !links[from][to] {
                                continue;
                            }
                            let mut s = TcpStream::connect(addr)?;
                            s.set_nodelay(true)?;
                            let mut hello = [0u8; 8];
                            hello[..4].copy_from_slice(&MAGIC.to_le_bytes());
                            hello[4..].copy_from_slice(&(from as u32).to_le_bytes());
                            s.write_all(&hello)?;
                            dialled.push((to, s));
                        }
                    }
                    Ok(outgoing)
                })?
        };

        // Accept every inbound link and identify the dialler. Listeners
        // poll non-blockingly so a dialler failure surfaces as an error
        // here instead of an accept that waits forever.
        let accepted = (|| -> std::io::Result<Vec<Vec<(usize, TcpStream)>>> {
            let mut incoming: Vec<Vec<(usize, TcpStream)>> = (0..n).map(|_| Vec::new()).collect();
            for (to, listener) in listeners.iter().enumerate() {
                listener.set_nonblocking(true)?;
                let expected = (0..n).filter(|&from| links[from][to]).count();
                while incoming[to].len() < expected {
                    let (mut s, _) = match listener.accept() {
                        Ok(conn) => conn,
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            if dialler.is_finished() {
                                // Dialling ended (necessarily in error —
                                // success implies every link was dialled);
                                // stop so the join below reports it.
                                return Err(std::io::Error::new(
                                    std::io::ErrorKind::ConnectionAborted,
                                    "dialler exited before all links connected",
                                ));
                            }
                            std::thread::sleep(Duration::from_millis(2));
                            continue;
                        }
                        Err(e) => return Err(e),
                    };
                    // Not inherited from the listener on all platforms.
                    s.set_nonblocking(false)?;
                    s.set_nodelay(true)?;
                    let mut hello = [0u8; 8];
                    s.read_exact(&mut hello)?;
                    let magic = u32::from_le_bytes(hello[..4].try_into().expect("4 bytes"));
                    if magic != MAGIC {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            "bad handshake magic",
                        ));
                    }
                    let from = u32::from_le_bytes(hello[4..].try_into().expect("4 bytes")) as usize;
                    if from >= n || !links[from][to] {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("handshake from unexpected peer {from}"),
                        ));
                    }
                    incoming[to].push((from, s));
                }
            }
            Ok(incoming)
        })();
        let dialled = dialler
            .join()
            .map_err(|_| std::io::Error::other("dialler thread panicked"))?;
        // A dial error is the root cause; report it ahead of the accept
        // error it induced.
        let outgoing = dialled?;
        let incoming = accepted?;

        // Assemble the endpoints: one writer thread per outgoing link, one
        // reader thread per node multiplexing every incoming link, one
        // inbox per node. Encode scratch is recycled mesh-wide, and every
        // writer holds its *destination* plane's waker.
        let pool = Arc::new(BufPool::new());
        let wakers: Vec<Arc<Waker>> = (0..n).map(|_| Arc::new(Waker::new(n))).collect();
        let mut endpoints = Vec::with_capacity(n);
        for (me, (out, inc)) in outgoing.into_iter().zip(incoming).enumerate() {
            let (inbox_tx, inbox) = channel::<Incoming>();
            let wire_dropped = Arc::new(AtomicU64::new(0));
            let failures = Arc::new(AtomicU64::new(0));
            let stop = Arc::new(AtomicBool::new(false));
            let mut writers: Vec<Option<Sender<Arc<[u8]>>>> = (0..n).map(|_| None).collect();
            let mut threads = Vec::new();
            for (to, stream) in out {
                let (tx, rx) = channel::<Arc<[u8]>>();
                writers[to] = Some(tx);
                let dropped = Arc::clone(&wire_dropped);
                let failed = Arc::clone(&failures);
                let peer_waker = Arc::clone(&wakers[to]);
                let t = std::thread::Builder::new()
                    .name(format!("tcp-w{me}>{to}"))
                    .spawn(move || writer_loop(stream, rx, me, peer_waker, dropped, failed))?;
                threads.push(t);
            }
            if !inc.is_empty() {
                let conns: Vec<Conn> = inc
                    .into_iter()
                    .map(|(from, stream)| Conn {
                        from,
                        stream,
                        dec: StreamDecoder::new(),
                    })
                    .collect();
                let stop = Arc::clone(&stop);
                let failed = Arc::clone(&failures);
                let waker = Arc::clone(&wakers[me]);
                let t = std::thread::Builder::new()
                    .name(format!("tcp-r{me}"))
                    .spawn(move || reader_plane(conns, inbox_tx, stop, failed, waker))?;
                threads.push(t);
            }
            endpoints.push(TcpTransport {
                me,
                writers,
                inbox,
                pool: Arc::clone(&pool),
                wire_dropped,
                local_dropped: 0,
                failures,
                stop,
                waker: Arc::clone(&wakers[me]),
                threads,
            });
        }
        Ok(endpoints)
    }

    fn send_frame(&mut self, to: usize, frame: Arc<[u8]>) {
        match self.writers.get(to).and_then(|w| w.as_ref()) {
            Some(tx) if tx.send(frame).is_ok() => {}
            // No link, or the writer already exited: count the drop.
            _ => self.local_dropped += 1,
        }
    }
}

impl Transport for TcpTransport {
    fn me(&self) -> usize {
        self.me
    }

    fn send(&mut self, to: usize, msg: &WireMsg) {
        let frame = encode_shared(msg, &self.pool);
        self.send_frame(to, frame);
    }

    fn broadcast(&mut self, targets: &[usize], msg: &WireMsg) {
        let frame = encode_shared(msg, &self.pool);
        for &to in targets {
            self.send_frame(to, Arc::clone(&frame));
        }
    }

    fn broadcast_range(&mut self, targets: &[usize], msg: &WireMsg, range: std::ops::Range<usize>) {
        // Sharded scatter: one pooled encode of the subslice, one shared
        // frame for the whole shard group (same zero-copy discipline as
        // `broadcast`).
        let frame = encode_range_shared(msg, range, &self.pool);
        for &to in targets {
            self.send_frame(to, Arc::clone(&frame));
        }
    }

    fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Incoming, RecvError> {
        match self.inbox.recv_timeout(timeout) {
            Ok(i) => Ok(i),
            Err(RecvTimeoutError::Timeout) => Err(RecvError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(RecvError::Closed),
        }
    }

    fn dropped_sends(&self) -> u64 {
        self.local_dropped + self.wire_dropped.load(Ordering::Relaxed)
    }

    fn link_failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        self.waker.poke(); // the plane re-checks the stop flag at once
                           // Dropping the queues lets each writer drain what is already
                           // queued, half-close its socket, and exit.
        for w in &mut self.writers {
            *w = None;
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Pumps queued frames onto one socket, length-prefixed and **batched**:
/// each wake-up drains everything waiting in the queue (up to
/// [`MAX_BATCH`]) and flushes the whole batch through one vectored write
/// path — under load a syscall carries many frames instead of one.
/// Exits when the queue closes (endpoint shutdown); a broken or stalled
/// socket severs the link (counted) and marks every subsequent frame
/// dropped rather than aborting the node.
fn writer_loop(
    mut stream: TcpStream,
    rx: Receiver<Arc<[u8]>>,
    from: usize,
    peer_waker: Arc<Waker>,
    dropped: Arc<AtomicU64>,
    failures: Arc<AtomicU64>,
) {
    let mut broken = stream.set_write_timeout(Some(WRITE_STALL)).is_err();
    // Prefix bytes are staged here, reused across batches; frame bodies
    // are gathered zero-copy from their shared buffers.
    let mut scratch = Vec::new();
    let mut batch: Vec<Arc<[u8]>> = Vec::with_capacity(MAX_BATCH);
    while let Ok(first) = rx.recv() {
        batch.push(first);
        while batch.len() < MAX_BATCH {
            match rx.try_recv() {
                Ok(frame) => batch.push(frame),
                Err(_) => break,
            }
        }
        if !broken {
            if write_frames(&mut stream, &batch, &mut scratch).is_ok() {
                // The kernel holds bytes for the peer: wake its plane
                // (once per batch, not per frame), naming this link.
                peer_waker.notify_from(from);
            } else {
                broken = true;
                failures.fetch_add(1, Ordering::Relaxed);
            }
        }
        if broken {
            dropped.fetch_add(batch.len() as u64, Ordering::Relaxed);
        }
        batch.clear();
    }
    // Half-close: the peer's reader sees EOF and drops the link promptly.
    let _ = stream.shutdown(Shutdown::Write);
    peer_waker.notify_from(from);
}

/// One incoming link of a node's reader plane.
struct Conn {
    from: usize,
    stream: TcpStream,
    dec: StreamDecoder,
}

/// What one socket visit produced.
enum Pump {
    /// Bytes arrived (frames may have been delivered to the inbox).
    Data,
    /// Nothing ready.
    Idle,
    /// Peer half-closed cleanly.
    Eof,
    /// Poisoned stream or socket error: sever and count.
    Severed,
    /// The endpoint's inbox is gone; the whole plane can exit.
    Gone,
}

/// Reads whatever one socket has ready (bounded by [`READS_PER_VISIT`]
/// chunks, so a firehose link cannot starve its siblings) and pushes every
/// completed frame into the node's inbox.
fn pump_conn(conn: &mut Conn, inbox: &Sender<Incoming>, chunk: &mut [u8]) -> Pump {
    let mut got_any = false;
    for _ in 0..READS_PER_VISIT {
        match conn.stream.read(chunk) {
            Ok(0) => return Pump::Eof,
            Ok(k) => {
                conn.dec.extend(&chunk[..k]);
                loop {
                    match conn.dec.next_frame() {
                        Ok(Some(frame)) => {
                            let payload: Arc<[u8]> = frame.into();
                            let incoming = Incoming {
                                from: conn.from,
                                payload,
                            };
                            if inbox.send(incoming).is_err() {
                                return Pump::Gone;
                            }
                        }
                        Ok(None) => break, // need more bytes
                        Err(_) => return Pump::Severed,
                    }
                }
                got_any = true;
                if k < chunk.len() {
                    break; // socket drained for now
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Pump::Severed,
        }
    }
    if got_any {
        Pump::Data
    } else {
        Pump::Idle
    }
}

/// One node's reader plane: multiplexes **all** of its incoming sockets on
/// a single thread. Sweeps visit only links marked *hot* — signalled ready
/// by a peer's writer through the node's [`Waker`], or mid-burst on their
/// last visit — so a wake-up for one busy link never pays an `EAGAIN` read
/// on every quiet sibling. While frames flow the loop never sleeps; when
/// every hot link comes back empty it parks on the waker until the next
/// flushed batch (with [`PARK_BACKSTOP`] as a missed-signal safety net,
/// whose pure-timeout wake does one full resynchronising sweep) — idle
/// meshes burn neither CPU, nor timer wake-ups, nor speculative `read`
/// syscalls, and a flushed batch still reaches its receiver at futex-wake
/// latency.
///
/// Exits on the stop flag, when every link has gone away, or when the
/// inbox is no longer read. A clean EOF just removes the link; EOF with
/// bytes still pending re-assembly, a poisoned stream, or a socket error
/// severs it and counts a link failure.
fn reader_plane(
    mut conns: Vec<Conn>,
    inbox: Sender<Incoming>,
    stop: Arc<AtomicBool>,
    failures: Arc<AtomicU64>,
    waker: Arc<Waker>,
) {
    for c in &conns {
        // A socket that cannot be made non-blocking would wedge the whole
        // plane; read errors below will sever it.
        let _ = c.stream.set_nonblocking(true);
    }
    let mut chunk = vec![0u8; READ_CHUNK];
    // Hot = worth reading this sweep, indexed by sender id.
    let mut hot = vec![false; waker.slots()];
    let mut full_sweep = true; // the first pass reads every link once
    let mut idle: u32 = 0;
    while !stop.load(Ordering::Relaxed) && !conns.is_empty() {
        waker.collect(&mut hot);
        let mut progress = false;
        let mut i = 0;
        while i < conns.len() {
            let from = conns[i].from;
            if !(full_sweep || hot[from]) {
                i += 1;
                continue;
            }
            match pump_conn(&mut conns[i], &inbox, &mut chunk) {
                Pump::Data => {
                    // The kernel buffer may hold more than one visit
                    // drains: stay hot until a visit comes back empty.
                    hot[from] = true;
                    progress = true;
                    i += 1;
                }
                Pump::Idle => {
                    hot[from] = false;
                    i += 1;
                }
                Pump::Eof => {
                    // Mid-frame EOF means the peer died with a frame on
                    // the wire — that is a failure, not a goodbye.
                    if conns[i].dec.pending() > 0 {
                        failures.fetch_add(1, Ordering::Relaxed);
                    }
                    hot[from] = false;
                    conns.swap_remove(i);
                }
                Pump::Severed => {
                    failures.fetch_add(1, Ordering::Relaxed);
                    let _ = conns[i].stream.shutdown(Shutdown::Both);
                    hot[from] = false;
                    conns.swap_remove(i);
                }
                Pump::Gone => return,
            }
        }
        full_sweep = false;
        if progress {
            idle = 0;
            continue;
        }
        // Grace-yield before parking: with no hot links a sweep costs one
        // lock and a flag scan — no reads — so yielding lets the peers run
        // (they are what produces the next flush) and usually a notify
        // lands within a few quanta, far cheaper than a futex sleep/wake
        // cycle. Only a genuinely quiet mesh pays the park.
        idle = idle.saturating_add(1);
        if idle <= GRACE_YIELDS {
            std::thread::yield_now();
            continue;
        }
        full_sweep = !waker.park_collect(&mut hot, PARK_BACKSTOP);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{decode, encode, prefix_frame};
    use std::time::Instant;
    use tensor::Tensor;

    fn msg(step: u64, vals: Vec<f32>) -> WireMsg {
        WireMsg::Gradient {
            step,
            grad: Tensor::from_flat(vals),
        }
    }

    /// The lost-wakeup window: a writer flushes and notifies *after* the
    /// plane's sweep found nothing but *before* the plane parks. The
    /// sticky poked bit is checked under the same lock the park waits on,
    /// so the park must return immediately with the mark — not sleep
    /// until the backstop (or forever, stalling the round the frame
    /// belongs to).
    #[test]
    fn notify_between_collect_and_park_is_never_lost() {
        let w = Waker::new(2);
        let mut hot = vec![false; 2];
        w.collect(&mut hot); // the sweep saw nothing
        w.notify_from(1); // flush lands in the mark→park window
        let t0 = Instant::now();
        let poked = w.park_collect(&mut hot, Duration::from_secs(10));
        assert!(poked, "sticky bit must short-circuit the park");
        assert!(hot[1], "the ready mark must survive into the next sweep");
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "park must not wait out its timeout: {:?}",
            t0.elapsed()
        );
    }

    /// A pure backstop timeout (hypothetically missed signal) must report
    /// `false` so the plane does one full resynchronising sweep instead of
    /// trusting (possibly stale) ready marks.
    #[test]
    fn pure_timeout_park_requests_a_resync_sweep() {
        let w = Waker::new(1);
        let mut hot = vec![false; 1];
        let poked = w.park_collect(&mut hot, Duration::from_millis(5));
        assert!(!poked, "timeout wake must demand a full sweep");
        assert!(!hot[0]);
    }

    /// End-to-end regression for the park/notify boundary: frames paced
    /// slower than the grace yields force the plane to park between every
    /// frame, so each delivery exercises a fresh park→notify→sweep cycle.
    /// A lost wake-up would strand a frame until shutdown and fail the
    /// per-frame receive below.
    #[test]
    fn parked_plane_wakes_for_every_paced_frame() {
        let mut mesh = TcpTransport::mesh(2, |_, _| true).unwrap();
        let mut n1 = mesh.pop().unwrap();
        let mut n0 = mesh.pop().unwrap();
        for i in 0..100 {
            n0.send(1, &msg(i, vec![i as f32]));
            std::thread::sleep(Duration::from_millis(2));
            let got = n1.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(decode(&got.payload).unwrap().step(), i);
        }
        n0.shutdown();
        n1.shutdown();
        assert_eq!(n1.link_failures(), 0);
    }

    #[test]
    fn mesh_routes_and_identifies_senders() {
        let mut mesh = TcpTransport::mesh(3, |_, _| true).unwrap();
        let mut n2 = mesh.pop().unwrap();
        let mut n1 = mesh.pop().unwrap();
        let mut n0 = mesh.pop().unwrap();
        n0.send(2, &msg(7, vec![1.0]));
        n1.send(2, &msg(8, vec![2.0]));
        let mut got = Vec::new();
        for _ in 0..2 {
            let i = n2.recv_timeout(Duration::from_secs(5)).unwrap();
            got.push((i.from, decode(&i.payload).unwrap().step()));
        }
        got.sort_unstable();
        assert_eq!(got, vec![(0, 7), (1, 8)]);
        for t in [&mut n0, &mut n1, &mut n2] {
            t.shutdown();
            assert_eq!(t.link_failures(), 0, "clean mesh must sever nothing");
        }
    }

    #[test]
    fn sparse_mesh_counts_linkless_sends() {
        // Only 0→1 exists.
        let mut mesh = TcpTransport::mesh(2, |a, b| a == 0 && b == 1).unwrap();
        let mut n1 = mesh.pop().unwrap();
        let mut n0 = mesh.pop().unwrap();
        n1.send(0, &msg(0, vec![])); // no such link
        assert_eq!(n1.dropped_sends(), 1);
        n0.send(1, &msg(3, vec![0.5]));
        let i = n1.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(i.from, 0);
        assert_eq!(n0.dropped_sends(), 0);
        n0.shutdown();
        n1.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_joins() {
        let mut mesh = TcpTransport::mesh(2, |_, _| true).unwrap();
        for t in &mut mesh {
            t.shutdown();
            t.shutdown();
            assert!(t.threads.is_empty());
        }
    }

    #[test]
    fn large_frames_cross_the_stream_intact() {
        let mut mesh = TcpTransport::mesh(2, |_, _| true).unwrap();
        let mut n1 = mesh.pop().unwrap();
        let mut n0 = mesh.pop().unwrap();
        // Bigger than one reader chunk, so re-assembly spans reads.
        let vals: Vec<f32> = (0..100_000).map(|i| i as f32 * 0.25).collect();
        n0.broadcast(&[1], &msg(9, vals.clone()));
        let i = n1.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(decode(&i.payload).unwrap(), msg(9, vals));
        n0.shutdown();
        n1.shutdown();
    }

    #[test]
    fn broadcast_shares_one_encoded_frame_across_writers() {
        let mut mesh = TcpTransport::mesh(3, |_, _| true).unwrap();
        let mut n2 = mesh.pop().unwrap();
        let mut n1 = mesh.pop().unwrap();
        let mut n0 = mesh.pop().unwrap();
        // The pool sees one get/put per broadcast, not one per target.
        let before = n0.pool.fresh() + n0.pool.recycled();
        n0.broadcast(&[1, 2], &msg(1, vec![1.0, 2.0]));
        assert_eq!(n0.pool.fresh() + n0.pool.recycled(), before + 1);
        for n in [&mut n1, &mut n2] {
            let i = n.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(decode(&i.payload).unwrap(), msg(1, vec![1.0, 2.0]));
        }
        n0.shutdown();
        n1.shutdown();
        n2.shutdown();
    }

    /// The sender's protocol loop enqueues through an unbounded in-process
    /// queue: a peer that stops draining its TCP buffer stalls only its
    /// own writer thread, never the caller.
    #[test]
    fn stalled_peer_never_blocks_the_senders_queue() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let out = TcpStream::connect(addr).unwrap();
        // The accepted end exists but is never read: the kernel buffers
        // fill and the writer thread blocks mid-`write_vectored`.
        let stalled_peer = listener.accept().unwrap().0;
        let dropped = Arc::new(AtomicU64::new(0));
        let failures = Arc::new(AtomicU64::new(0));
        let (tx, rx) = channel::<Arc<[u8]>>();
        let writer = {
            let dropped = Arc::clone(&dropped);
            let failures = Arc::clone(&failures);
            let waker = Arc::new(Waker::new(1));
            std::thread::spawn(move || writer_loop(out, rx, 0, waker, dropped, failures))
        };
        // Far more than loopback socket buffers hold (~128 MiB total).
        let frame: Arc<[u8]> = vec![0u8; 256 * 1024].into();
        let t0 = Instant::now();
        for _ in 0..512 {
            tx.send(Arc::clone(&frame)).unwrap();
        }
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "protocol-side enqueue blocked on TCP backpressure: {:?}",
            t0.elapsed()
        );
        // Tear the stalled peer down: the blocked write errors out, the
        // writer counts the undeliverable remainder and exits on queue
        // close — nothing hangs.
        drop(stalled_peer);
        drop(tx);
        writer.join().unwrap();
        assert!(
            dropped.load(Ordering::Relaxed) > 0,
            "frames past the severance must be counted as dropped"
        );
        assert_eq!(failures.load(Ordering::Relaxed), 1, "one severed link");
    }

    /// A poisoned stream (over-cap length prefix) severs exactly that
    /// link, counts a failure, and leaves frames already delivered intact.
    #[test]
    fn poisoned_stream_is_severed_and_counted() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut byz = TcpStream::connect(addr).unwrap();
        let victim = listener.accept().unwrap().0;
        let (inbox_tx, inbox_rx) = channel::<Incoming>();
        let stop = Arc::new(AtomicBool::new(false));
        let failures = Arc::new(AtomicU64::new(0));
        let plane = {
            let conns = vec![Conn {
                from: 0,
                stream: victim,
                dec: StreamDecoder::new(),
            }];
            let stop = Arc::clone(&stop);
            let failures = Arc::clone(&failures);
            let waker = Arc::new(Waker::new(1));
            std::thread::spawn(move || reader_plane(conns, inbox_tx, stop, failures, waker))
        };
        // A valid frame first: it must survive the later poisoning.
        let mut prefixed = Vec::new();
        prefix_frame(&encode(&msg(5, vec![1.5])), &mut prefixed);
        byz.write_all(&prefixed).unwrap();
        let got = inbox_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(decode(&got.payload).unwrap(), msg(5, vec![1.5]));
        // Then a lying length prefix: the link is severed, the plane (now
        // linkless) exits, and the failure is counted.
        byz.write_all(&u32::MAX.to_le_bytes()).unwrap();
        plane.join().unwrap();
        assert_eq!(failures.load(Ordering::Relaxed), 1);
    }
}
