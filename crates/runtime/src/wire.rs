//! Binary wire format for protocol messages.
//!
//! Layout (little-endian):
//!
//! ```text
//! [ type: u8 ][ step: u64 ][ len: u32 ][ payload: f32 × len ]
//! ```
//!
//! This plays the role of the paper's protocol-buffer encoding: compact,
//! explicit, and — crucially for a Byzantine setting — every field is
//! validated on decode. A malformed frame from a Byzantine peer yields a
//! [`WireError`], never a panic.
//!
//! Encoding serializes **directly from the tensor's borrowed buffer** (no
//! intermediate copy of the payload), and [`encode_into`] reuses a caller
//! scratch buffer so a broadcast can encode once and fan the same bytes out
//! to every receiver.

use tensor::Tensor;

/// Message type tags.
const TAG_MODEL: u8 = 1;
const TAG_GRADIENT: u8 = 2;
const TAG_EXCHANGE: u8 = 3;

/// Frame header size: tag + step + payload length.
const HEADER: usize = 1 + 8 + 4;

/// A decoded protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMsg {
    /// Server → workers: model for `step`.
    Model {
        /// Training step.
        step: u64,
        /// Flat parameter vector.
        params: Tensor,
    },
    /// Worker → servers: gradient for `step`.
    Gradient {
        /// Training step.
        step: u64,
        /// Flat gradient vector.
        grad: Tensor,
    },
    /// Server → servers: exchange model for `step`.
    Exchange {
        /// Training step.
        step: u64,
        /// Flat parameter vector.
        params: Tensor,
    },
}

impl WireMsg {
    /// The step the message belongs to.
    pub fn step(&self) -> u64 {
        match self {
            WireMsg::Model { step, .. }
            | WireMsg::Gradient { step, .. }
            | WireMsg::Exchange { step, .. } => *step,
        }
    }

    /// The carried vector.
    pub fn vector(&self) -> &Tensor {
        match self {
            WireMsg::Model { params, .. } | WireMsg::Exchange { params, .. } => params,
            WireMsg::Gradient { grad, .. } => grad,
        }
    }

    fn tag(&self) -> u8 {
        match self {
            WireMsg::Model { .. } => TAG_MODEL,
            WireMsg::Gradient { .. } => TAG_GRADIENT,
            WireMsg::Exchange { .. } => TAG_EXCHANGE,
        }
    }
}

/// Decoding failures (malformed or truncated frames).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The frame is shorter than its header or declared payload.
    Truncated {
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        available: usize,
    },
    /// Unknown message-type tag.
    BadTag(u8),
    /// The declared payload length is implausible (> 2^28 elements).
    LengthOutOfRange(u32),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, available } => {
                write!(f, "truncated frame: need {needed} bytes, have {available}")
            }
            WireError::BadTag(t) => write!(f, "unknown message tag {t}"),
            WireError::LengthOutOfRange(n) => write!(f, "payload length {n} out of range"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes a message into `buf` (cleared first), straight from the
/// message's borrowed tensor buffer. Returns nothing; `buf` holds exactly
/// one frame afterwards.
pub fn encode_into(msg: &WireMsg, buf: &mut Vec<u8>) {
    let data = msg.vector().as_slice();
    buf.clear();
    buf.reserve(HEADER + data.len() * 4);
    buf.push(msg.tag());
    buf.extend_from_slice(&msg.step().to_le_bytes());
    buf.extend_from_slice(&(data.len() as u32).to_le_bytes());
    for &v in data {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Encodes a message into a fresh frame.
pub fn encode(msg: &WireMsg) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_into(msg, &mut buf);
    buf
}

/// Decodes a borrowed frame.
///
/// # Errors
///
/// Returns [`WireError`] for truncated frames, unknown tags or implausible
/// payload lengths.
pub fn decode(frame: &[u8]) -> Result<WireMsg, WireError> {
    if frame.len() < HEADER {
        return Err(WireError::Truncated {
            needed: HEADER,
            available: frame.len(),
        });
    }
    let tag = frame[0];
    let step = u64::from_le_bytes(frame[1..9].try_into().expect("8 header bytes"));
    let len = u32::from_le_bytes(frame[9..13].try_into().expect("4 header bytes"));
    if len > (1 << 28) {
        return Err(WireError::LengthOutOfRange(len));
    }
    let need = len as usize * 4;
    let payload = &frame[HEADER..];
    if payload.len() < need {
        return Err(WireError::Truncated {
            needed: HEADER + need,
            available: frame.len(),
        });
    }
    let data: Vec<f32> = payload[..need]
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunks")))
        .collect();
    let vec = Tensor::from_flat(data);
    match tag {
        TAG_MODEL => Ok(WireMsg::Model { step, params: vec }),
        TAG_GRADIENT => Ok(WireMsg::Gradient { step, grad: vec }),
        TAG_EXCHANGE => Ok(WireMsg::Exchange { step, params: vec }),
        t => Err(WireError::BadTag(t)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(tag: u8) -> WireMsg {
        let t = Tensor::from_flat(vec![1.5, -2.25, 0.0]);
        match tag {
            TAG_MODEL => WireMsg::Model {
                step: 42,
                params: t,
            },
            TAG_GRADIENT => WireMsg::Gradient { step: 42, grad: t },
            _ => WireMsg::Exchange {
                step: 42,
                params: t,
            },
        }
    }

    #[test]
    fn roundtrip_all_tags() {
        for tag in [TAG_MODEL, TAG_GRADIENT, TAG_EXCHANGE] {
            let msg = sample(tag);
            let back = decode(&encode(&msg)).unwrap();
            assert_eq!(back, msg);
            assert_eq!(back.step(), 42);
            assert_eq!(back.vector().len(), 3);
        }
    }

    #[test]
    fn frame_size_is_header_plus_payload() {
        let msg = sample(TAG_MODEL);
        assert_eq!(encode(&msg).len(), 13 + 3 * 4);
    }

    #[test]
    fn encode_into_reuses_buffer() {
        let mut buf = Vec::new();
        encode_into(&sample(TAG_MODEL), &mut buf);
        let cap = buf.capacity();
        encode_into(&sample(TAG_GRADIENT), &mut buf);
        assert_eq!(buf.capacity(), cap, "no reallocation for same-size frames");
        assert_eq!(decode(&buf).unwrap(), sample(TAG_GRADIENT));
    }

    #[test]
    fn empty_vector_roundtrips() {
        let msg = WireMsg::Gradient {
            step: 0,
            grad: Tensor::from_flat(vec![]),
        };
        assert_eq!(decode(&encode(&msg)).unwrap(), msg);
    }

    #[test]
    fn truncated_header_rejected() {
        let err = decode(&[1, 2, 3]).unwrap_err();
        assert!(matches!(err, WireError::Truncated { .. }));
    }

    #[test]
    fn truncated_payload_rejected() {
        let mut frame = encode(&sample(TAG_MODEL));
        frame.truncate(frame.len() - 4);
        let err = decode(&frame).unwrap_err();
        assert!(matches!(err, WireError::Truncated { .. }));
    }

    #[test]
    fn bad_tag_rejected() {
        let mut frame = encode(&sample(TAG_MODEL));
        frame[0] = 99;
        assert_eq!(decode(&frame).unwrap_err(), WireError::BadTag(99));
    }

    #[test]
    fn huge_length_rejected() {
        let mut frame = vec![TAG_MODEL];
        frame.extend_from_slice(&0u64.to_le_bytes());
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = decode(&frame).unwrap_err();
        assert!(matches!(err, WireError::LengthOutOfRange(_)));
    }

    #[test]
    fn nan_values_survive_transport() {
        // The wire layer is value-agnostic; NaN filtering is the receiver's
        // job (protocol layer), not the codec's.
        let msg = WireMsg::Gradient {
            step: 1,
            grad: Tensor::from_flat(vec![f32::NAN]),
        };
        let back = decode(&encode(&msg)).unwrap();
        assert!(back.vector().as_slice()[0].is_nan());
    }
}
