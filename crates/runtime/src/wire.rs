//! Binary wire format for protocol messages.
//!
//! Frame layout (little-endian):
//!
//! ```text
//! [ type: u8 ][ step: u64 ][ len: u32 ][ payload: f32 × len ]
//! ```
//!
//! This plays the role of the paper's protocol-buffer encoding: compact,
//! explicit, and — crucially for a Byzantine setting — every field is
//! validated on decode. A malformed frame from a Byzantine peer yields a
//! [`WireError`], never a panic.
//!
//! Encoding serializes **directly from the tensor's borrowed buffer** (no
//! intermediate copy of the payload), and [`encode_into`] reuses a caller
//! scratch buffer so a broadcast can encode once and fan the same bytes out
//! to every receiver.
//!
//! Both transports (DESIGN.md §7) share this codec. The channel transport
//! moves whole frames, so [`decode`] alone suffices; the TCP transport sees
//! an undelimited byte stream, so each frame travels behind a `u32`
//! length prefix and [`StreamDecoder`] re-assembles frames incrementally,
//! yielding each frame as a borrow of its re-assembly buffer (no per-frame
//! copy). The prefix is validated against [`MAX_FRAME_BYTES`] *before* any
//! allocation — a Byzantine peer cannot make a receiver reserve gigabytes
//! by lying about the length. On the send side [`encode_shared`] fills a
//! recycled [`BufPool`](crate::pool::BufPool) scratch buffer and
//! [`write_frames`] flushes whole batches of prefixed frames per vectored
//! syscall.

use std::io::{IoSlice, Write};
use std::sync::Arc;

use tensor::Tensor;

use crate::pool::BufPool;

/// Message type tags.
const TAG_MODEL: u8 = 1;
const TAG_GRADIENT: u8 = 2;
const TAG_EXCHANGE: u8 = 3;

/// Frame header size: tag + step + payload length.
const HEADER: usize = 1 + 8 + 4;

/// Hard cap on a frame's element count (2^26 ≈ 67M coordinates, ~38× the
/// paper's d ≈ 1.75M — far above any real model here, far below anything
/// that could exhaust memory).
pub const MAX_ELEMS: u32 = 1 << 26;

/// Hard cap on a whole frame's size in bytes, enforced by both [`decode`]
/// (on the element count) and [`StreamDecoder`] (on the stream-level
/// length prefix, before buffering).
pub const MAX_FRAME_BYTES: usize = HEADER + MAX_ELEMS as usize * 4;

/// A decoded protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMsg {
    /// Server → workers: model for `step`.
    Model {
        /// Training step.
        step: u64,
        /// Flat parameter vector.
        params: Tensor,
    },
    /// Worker → servers: gradient for `step`.
    Gradient {
        /// Training step.
        step: u64,
        /// Flat gradient vector.
        grad: Tensor,
    },
    /// Server → servers: exchange model for `step`.
    Exchange {
        /// Training step.
        step: u64,
        /// Flat parameter vector.
        params: Tensor,
    },
}

impl WireMsg {
    /// The step the message belongs to.
    pub fn step(&self) -> u64 {
        match self {
            WireMsg::Model { step, .. }
            | WireMsg::Gradient { step, .. }
            | WireMsg::Exchange { step, .. } => *step,
        }
    }

    /// The carried vector.
    pub fn vector(&self) -> &Tensor {
        match self {
            WireMsg::Model { params, .. } | WireMsg::Exchange { params, .. } => params,
            WireMsg::Gradient { grad, .. } => grad,
        }
    }

    fn tag(&self) -> u8 {
        match self {
            WireMsg::Model { .. } => TAG_MODEL,
            WireMsg::Gradient { .. } => TAG_GRADIENT,
            WireMsg::Exchange { .. } => TAG_EXCHANGE,
        }
    }

    /// A copy of the message carrying only coordinates `range` of its
    /// vector. This is the *materialising* fallback behind
    /// [`Transport::broadcast_range`](crate::Transport::broadcast_range) —
    /// the concrete transports skip it and encode the range straight off
    /// the original buffer via [`encode_range_shared`].
    ///
    /// # Panics
    ///
    /// Panics when `range` does not fit the carried vector.
    pub fn slice(&self, range: std::ops::Range<usize>) -> WireMsg {
        let data = self.vector().as_slice()[range].to_vec();
        let t = Tensor::from_flat(data);
        match self {
            WireMsg::Model { step, .. } => WireMsg::Model {
                step: *step,
                params: t,
            },
            WireMsg::Gradient { step, .. } => WireMsg::Gradient {
                step: *step,
                grad: t,
            },
            WireMsg::Exchange { step, .. } => WireMsg::Exchange {
                step: *step,
                params: t,
            },
        }
    }
}

/// Decoding failures (malformed or truncated frames).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The frame is shorter than its header or declared payload.
    Truncated {
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        available: usize,
    },
    /// Unknown message-type tag.
    BadTag(u8),
    /// The declared payload length is implausible (> [`MAX_ELEMS`]).
    LengthOutOfRange(u32),
    /// A stream-level length prefix exceeds [`MAX_FRAME_BYTES`].
    FrameTooLarge(u32),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, available } => {
                write!(f, "truncated frame: need {needed} bytes, have {available}")
            }
            WireError::BadTag(t) => write!(f, "unknown message tag {t}"),
            WireError::LengthOutOfRange(n) => write!(f, "payload length {n} out of range"),
            WireError::FrameTooLarge(n) => {
                write!(f, "stream frame of {n} bytes exceeds cap {MAX_FRAME_BYTES}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Fills `buf` (cleared first) with one frame: `tag`/`step` header plus
/// `data` as the payload. All encode entry points funnel through this.
fn encode_parts(tag: u8, step: u64, data: &[f32], buf: &mut Vec<u8>) {
    buf.clear();
    buf.reserve(HEADER + data.len() * 4);
    buf.push(tag);
    buf.extend_from_slice(&step.to_le_bytes());
    buf.extend_from_slice(&(data.len() as u32).to_le_bytes());
    for &v in data {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Encodes a message into `buf` (cleared first), straight from the
/// message's borrowed tensor buffer. Returns nothing; `buf` holds exactly
/// one frame afterwards.
pub fn encode_into(msg: &WireMsg, buf: &mut Vec<u8>) {
    encode_parts(msg.tag(), msg.step(), msg.vector().as_slice(), buf);
}

/// Encodes coordinates `range` of the message's vector into `buf` — the
/// scatter path of the sharded gradient plane (DESIGN.md §9). The payload
/// is read straight off the original tensor's subslice, so no intermediate
/// per-shard tensor or buffer is ever materialised; the receiver decodes a
/// normal message of length `range.len()` and cannot tell the difference
/// from an unsharded send of that slice.
///
/// # Panics
///
/// Panics when `range` does not fit the carried vector.
pub fn encode_range_into(msg: &WireMsg, range: std::ops::Range<usize>, buf: &mut Vec<u8>) {
    encode_parts(msg.tag(), msg.step(), &msg.vector().as_slice()[range], buf);
}

/// Encodes a message into a fresh frame.
pub fn encode(msg: &WireMsg) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_into(msg, &mut buf);
    buf
}

/// Encodes a message into an `Arc`-shared frame through a recycled
/// [`BufPool`] scratch buffer: the fill runs in pooled memory and only the
/// final right-sized `Arc<[u8]>` allocation remains per message. Both
/// transports encode through this (one pool per mesh), so a broadcast
/// costs one encode + one shared allocation however many receivers fan
/// out.
pub fn encode_shared(msg: &WireMsg, pool: &BufPool) -> Arc<[u8]> {
    let mut scratch = pool.get();
    encode_into(msg, &mut scratch);
    let frame: Arc<[u8]> = scratch.as_slice().into();
    pool.put(scratch);
    frame
}

/// [`encode_range_into`] through a recycled pool scratch buffer into an
/// `Arc`-shared frame — one encode + one shared allocation per shard group
/// however many group members fan out, exactly like [`encode_shared`] for
/// the unsharded plane.
///
/// # Panics
///
/// Panics when `range` does not fit the carried vector.
pub fn encode_range_shared(
    msg: &WireMsg,
    range: std::ops::Range<usize>,
    pool: &BufPool,
) -> Arc<[u8]> {
    let mut scratch = pool.get();
    encode_range_into(msg, range, &mut scratch);
    let frame: Arc<[u8]> = scratch.as_slice().into();
    pool.put(scratch);
    frame
}

/// Decodes a borrowed frame.
///
/// # Errors
///
/// Returns [`WireError`] for truncated frames, unknown tags or implausible
/// payload lengths.
pub fn decode(frame: &[u8]) -> Result<WireMsg, WireError> {
    if frame.len() < HEADER {
        return Err(WireError::Truncated {
            needed: HEADER,
            available: frame.len(),
        });
    }
    let tag = frame[0];
    let step = u64::from_le_bytes(frame[1..9].try_into().expect("8 header bytes"));
    let len = u32::from_le_bytes(frame[9..13].try_into().expect("4 header bytes"));
    if len > MAX_ELEMS {
        return Err(WireError::LengthOutOfRange(len));
    }
    let need = len as usize * 4;
    let payload = &frame[HEADER..];
    if payload.len() < need {
        return Err(WireError::Truncated {
            needed: HEADER + need,
            available: frame.len(),
        });
    }
    let data: Vec<f32> = payload[..need]
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunks")))
        .collect();
    let vec = Tensor::from_flat(data);
    match tag {
        TAG_MODEL => Ok(WireMsg::Model { step, params: vec }),
        TAG_GRADIENT => Ok(WireMsg::Gradient { step, grad: vec }),
        TAG_EXCHANGE => Ok(WireMsg::Exchange { step, params: vec }),
        t => Err(WireError::BadTag(t)),
    }
}

/// Incremental decoder for a length-prefixed byte *stream* of frames, as
/// carried over TCP:
///
/// ```text
/// [ nbytes: u32 ][ frame: nbytes bytes ] [ nbytes: u32 ][ frame ] …
/// ```
///
/// Feed arbitrary chunks with [`extend`](Self::extend) (TCP delivers bytes
/// at whatever granularity it likes) and drain complete frames with
/// [`next_frame`](Self::next_frame). The decoder is *fallible, never
/// panicking*: an over-cap length prefix poisons the stream with
/// [`WireError::FrameTooLarge`] before a single payload byte is buffered —
/// after any error the connection cannot be re-synchronised and must be
/// closed (the Byzantine-peer convention, DESIGN.md §7).
#[derive(Debug, Default)]
pub struct StreamDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted lazily to amortise the memmove).
    start: usize,
}

/// Stream-level length prefix size.
const PREFIX: usize = 4;

impl StreamDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes received from the stream.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing: keeps the buffer bounded by one frame
        // plus one read chunk regardless of how long the stream runs.
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > (1 << 16) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Pops the next complete frame's bytes, `Ok(None)` when more input is
    /// needed. The frame is *borrowed straight from the re-assembly
    /// buffer* — no per-frame copy; the receiver decodes (or `Arc`s) it
    /// before the next [`extend`](Self::extend) may compact the buffer.
    ///
    /// # Errors
    ///
    /// [`WireError::FrameTooLarge`] when the length prefix exceeds
    /// [`MAX_FRAME_BYTES`]. The stream is unrecoverable after an error.
    pub fn next_frame(&mut self) -> Result<Option<&[u8]>, WireError> {
        let avail = &self.buf[self.start..];
        if avail.len() < PREFIX {
            return Ok(None);
        }
        let nbytes = u32::from_le_bytes(avail[..PREFIX].try_into().expect("4 prefix bytes"));
        if nbytes as usize > MAX_FRAME_BYTES {
            return Err(WireError::FrameTooLarge(nbytes));
        }
        let total = PREFIX + nbytes as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let frame_start = self.start + PREFIX;
        let frame_end = self.start + total;
        self.start = frame_end;
        Ok(Some(&self.buf[frame_start..frame_end]))
    }

    /// Pops and decodes the next complete message (frame re-assembly plus
    /// [`decode`] in one step).
    ///
    /// # Errors
    ///
    /// Any [`WireError`] from the prefix check or the frame codec.
    pub fn next_msg(&mut self) -> Result<Option<WireMsg>, WireError> {
        match self.next_frame()? {
            Some(frame) => decode(frame).map(Some),
            None => Ok(None),
        }
    }
}

/// Length-prefixes one already-encoded frame for the stream layer (the
/// inverse of [`StreamDecoder`]). A broadcast encodes the frame once and
/// each per-peer writer prefixes it independently.
pub fn prefix_frame(frame: &[u8], out: &mut Vec<u8>) {
    out.clear();
    out.reserve(PREFIX + frame.len());
    out.extend_from_slice(&(frame.len() as u32).to_le_bytes());
    out.extend_from_slice(frame);
}

/// Hard ceiling on iovecs per `write_vectored` call (Linux caps a single
/// `writev` at `IOV_MAX` = 1024 entries; stay well under it).
const MAX_IOV: usize = 512;

/// Writes a whole batch of frames as one length-prefixed stream burst:
/// every frame's `u32` prefix is staged in the reused `scratch` buffer and
/// prefixes + frame bodies go to the socket through as few
/// [`write_vectored`](Write::write_vectored) calls as the OS allows —
/// frame bodies are gathered zero-copy from their shared buffers, never
/// copied into a staging area.
///
/// The on-wire byte sequence is **exactly** what prefixing and
/// `write_all`-ing each frame individually would produce (the
/// `wire_fuzz` proptests pin this against arbitrary partial-write
/// behaviour), so batching is invisible to the receiving
/// [`StreamDecoder`].
///
/// # Errors
///
/// Any I/O error from the underlying writer; a zero-length vectored write
/// surfaces as [`std::io::ErrorKind::WriteZero`]. The stream position is
/// unspecified after an error — treat the link as severed.
pub fn write_frames<W: Write + ?Sized>(
    out: &mut W,
    frames: &[Arc<[u8]>],
    scratch: &mut Vec<u8>,
) -> std::io::Result<()> {
    scratch.clear();
    let mut total = 0usize;
    for f in frames {
        scratch.extend_from_slice(&(f.len() as u32).to_le_bytes());
        total += PREFIX + f.len();
    }
    let mut written = 0usize;
    let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity((frames.len() * 2).min(MAX_IOV));
    while written < total {
        // Rebuild the iovec list past the bytes already on the wire: a
        // partial write may stop anywhere, including mid-prefix.
        slices.clear();
        let mut skip = written;
        'gather: for (i, f) in frames.iter().enumerate() {
            for part in [&scratch[i * PREFIX..(i + 1) * PREFIX], &f[..]] {
                if skip >= part.len() {
                    skip -= part.len();
                    continue;
                }
                slices.push(IoSlice::new(&part[skip..]));
                skip = 0;
                if slices.len() == MAX_IOV {
                    break 'gather;
                }
            }
        }
        match out.write_vectored(&slices) {
            Ok(0) => return Err(std::io::ErrorKind::WriteZero.into()),
            Ok(n) => written += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(tag: u8) -> WireMsg {
        let t = Tensor::from_flat(vec![1.5, -2.25, 0.0]);
        match tag {
            TAG_MODEL => WireMsg::Model {
                step: 42,
                params: t,
            },
            TAG_GRADIENT => WireMsg::Gradient { step: 42, grad: t },
            _ => WireMsg::Exchange {
                step: 42,
                params: t,
            },
        }
    }

    #[test]
    fn roundtrip_all_tags() {
        for tag in [TAG_MODEL, TAG_GRADIENT, TAG_EXCHANGE] {
            let msg = sample(tag);
            let back = decode(&encode(&msg)).unwrap();
            assert_eq!(back, msg);
            assert_eq!(back.step(), 42);
            assert_eq!(back.vector().len(), 3);
        }
    }

    #[test]
    fn frame_size_is_header_plus_payload() {
        let msg = sample(TAG_MODEL);
        assert_eq!(encode(&msg).len(), 13 + 3 * 4);
    }

    #[test]
    fn encode_into_reuses_buffer() {
        let mut buf = Vec::new();
        encode_into(&sample(TAG_MODEL), &mut buf);
        let cap = buf.capacity();
        encode_into(&sample(TAG_GRADIENT), &mut buf);
        assert_eq!(buf.capacity(), cap, "no reallocation for same-size frames");
        assert_eq!(decode(&buf).unwrap(), sample(TAG_GRADIENT));
    }

    #[test]
    fn empty_vector_roundtrips() {
        let msg = WireMsg::Gradient {
            step: 0,
            grad: Tensor::from_flat(vec![]),
        };
        assert_eq!(decode(&encode(&msg)).unwrap(), msg);
    }

    #[test]
    fn truncated_header_rejected() {
        let err = decode(&[1, 2, 3]).unwrap_err();
        assert!(matches!(err, WireError::Truncated { .. }));
    }

    #[test]
    fn truncated_payload_rejected() {
        let mut frame = encode(&sample(TAG_MODEL));
        frame.truncate(frame.len() - 4);
        let err = decode(&frame).unwrap_err();
        assert!(matches!(err, WireError::Truncated { .. }));
    }

    #[test]
    fn bad_tag_rejected() {
        let mut frame = encode(&sample(TAG_MODEL));
        frame[0] = 99;
        assert_eq!(decode(&frame).unwrap_err(), WireError::BadTag(99));
    }

    #[test]
    fn huge_length_rejected() {
        let mut frame = vec![TAG_MODEL];
        frame.extend_from_slice(&0u64.to_le_bytes());
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = decode(&frame).unwrap_err();
        assert!(matches!(err, WireError::LengthOutOfRange(_)));
    }

    #[test]
    fn stream_decoder_reassembles_byte_at_a_time() {
        let msgs: Vec<WireMsg> = [TAG_MODEL, TAG_GRADIENT, TAG_EXCHANGE]
            .into_iter()
            .map(sample)
            .collect();
        let mut stream = Vec::new();
        for m in &msgs {
            let mut prefixed = Vec::new();
            prefix_frame(&encode(m), &mut prefixed);
            stream.extend_from_slice(&prefixed);
        }
        let mut dec = StreamDecoder::new();
        let mut out = Vec::new();
        for b in stream {
            dec.extend(&[b]);
            while let Some(m) = dec.next_msg().unwrap() {
                out.push(m);
            }
        }
        assert_eq!(out, msgs);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn stream_decoder_rejects_oversized_prefix_before_buffering() {
        let mut dec = StreamDecoder::new();
        dec.extend(&u32::MAX.to_le_bytes());
        assert_eq!(
            dec.next_frame().unwrap_err(),
            WireError::FrameTooLarge(u32::MAX)
        );
    }

    #[test]
    fn stream_decoder_waits_for_partial_frames() {
        let mut prefixed = Vec::new();
        prefix_frame(&encode(&sample(TAG_MODEL)), &mut prefixed);
        let mut dec = StreamDecoder::new();
        dec.extend(&prefixed[..prefixed.len() - 1]);
        assert_eq!(dec.next_frame().unwrap(), None);
        dec.extend(&prefixed[prefixed.len() - 1..]);
        assert_eq!(dec.next_msg().unwrap().unwrap(), sample(TAG_MODEL));
    }

    #[test]
    fn stream_decoder_surfaces_codec_errors() {
        let mut frame = encode(&sample(TAG_MODEL));
        frame[0] = 77; // corrupt the tag, keep the stream framing valid
        let mut prefixed = Vec::new();
        prefix_frame(&frame, &mut prefixed);
        let mut dec = StreamDecoder::new();
        dec.extend(&prefixed);
        assert_eq!(dec.next_msg().unwrap_err(), WireError::BadTag(77));
    }

    #[test]
    fn write_frames_matches_frame_at_a_time() {
        let frames: Vec<Arc<[u8]>> = [TAG_MODEL, TAG_GRADIENT, TAG_EXCHANGE]
            .into_iter()
            .map(|t| encode(&sample(t)).into())
            .collect();
        let mut expected = Vec::new();
        let mut one = Vec::new();
        for f in &frames {
            prefix_frame(f, &mut one);
            expected.extend_from_slice(&one);
        }
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        write_frames(&mut out, &frames, &mut scratch).unwrap();
        assert_eq!(out, expected, "batched bytes must equal sequential bytes");
        // And the receiving decoder agrees.
        let mut dec = StreamDecoder::new();
        dec.extend(&out);
        for t in [TAG_MODEL, TAG_GRADIENT, TAG_EXCHANGE] {
            assert_eq!(dec.next_msg().unwrap().unwrap(), sample(t));
        }
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn write_frames_empty_batch_writes_nothing() {
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        write_frames(&mut out, &[], &mut scratch).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn encode_shared_recycles_scratch() {
        let pool = BufPool::new();
        let a = encode_shared(&sample(TAG_MODEL), &pool);
        let b = encode_shared(&sample(TAG_GRADIENT), &pool);
        assert_eq!(decode(&a).unwrap(), sample(TAG_MODEL));
        assert_eq!(decode(&b).unwrap(), sample(TAG_GRADIENT));
        assert_eq!(pool.fresh(), 1, "second encode reuses the first scratch");
        assert_eq!(pool.recycled(), 1);
    }

    #[test]
    fn range_encode_is_bit_identical_to_slicing_first() {
        let msg = WireMsg::Gradient {
            step: 42,
            grad: Tensor::from_flat((0..11).map(|i| i as f32 * -0.25).collect()),
        };
        for range in [0..11, 0..1, 3..7, 10..11, 5..5] {
            let mut ranged = Vec::new();
            encode_range_into(&msg, range.clone(), &mut ranged);
            assert_eq!(
                ranged,
                encode(&msg.slice(range.clone())),
                "range {range:?} differs from encoding the sliced message"
            );
            let decoded = decode(&ranged).unwrap();
            assert_eq!(decoded.step(), 42);
            assert_eq!(decoded.vector().len(), range.len());
        }
    }

    #[test]
    fn range_encode_shared_recycles_and_round_trips() {
        let pool = BufPool::new();
        let msg = WireMsg::Model {
            step: 7,
            params: Tensor::from_flat(vec![1.0, 2.0, 3.0, 4.0]),
        };
        let a = encode_range_shared(&msg, 1..3, &pool);
        let b = encode_range_shared(&msg, 0..2, &pool);
        assert_eq!(decode(&a).unwrap().vector().as_slice(), &[2.0, 3.0]);
        assert_eq!(decode(&b).unwrap().vector().as_slice(), &[1.0, 2.0]);
        assert_eq!(pool.fresh(), 1, "second range encode reuses the scratch");
    }

    #[test]
    fn slice_preserves_variant_and_step() {
        let msg = WireMsg::Exchange {
            step: 9,
            params: Tensor::from_flat(vec![5.0, 6.0, 7.0]),
        };
        let sliced = msg.slice(1..2);
        assert!(matches!(sliced, WireMsg::Exchange { step: 9, .. }));
        assert_eq!(sliced.vector().as_slice(), &[6.0]);
    }

    #[test]
    fn nan_values_survive_transport() {
        // The wire layer is value-agnostic; NaN filtering is the receiver's
        // job (protocol layer), not the codec's.
        let msg = WireMsg::Gradient {
            step: 1,
            grad: Tensor::from_flat(vec![f32::NAN]),
        };
        let back = decode(&encode(&msg)).unwrap();
        assert!(back.vector().as_slice()[0].is_nan());
    }
}
