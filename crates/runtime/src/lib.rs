//! Threaded deployment of the GuanYu protocol over real channels.
//!
//! The simulation engines in the `guanyu` crate model the network; this
//! crate actually *runs* the protocol across OS threads, one per node,
//! exchanging length-prefixed binary frames over `crossbeam` channels —
//! the in-process analogue of the paper's gRPC + protocol-buffers transport
//! (§4). Every model and gradient really is serialised to bytes and parsed
//! back on the receiving side, so the serialization path the paper's §5.3
//! blames for its low-level-runtime overhead is genuinely exercised (and
//! measured by the `serialization` Criterion bench).
//!
//! Scope note: the threaded runtime supports Byzantine *workers* (the
//! attacks that forge from observed traffic); fully-omniscient server
//! attacks are exercised in the deterministic engines where the adversary's
//! global view is well-defined (see DESIGN.md §4).
//!
//! # Example
//!
//! ```
//! use guanyu_runtime::{run_cluster, RuntimeConfig};
//! use guanyu::config::ClusterConfig;
//! use data::{synthetic_cifar, SyntheticConfig};
//! use nn::models;
//!
//! let (train, _) = synthetic_cifar(&SyntheticConfig {
//!     train: 64, test: 0, side: 8, ..Default::default()
//! }).unwrap();
//! let cfg = RuntimeConfig {
//!     cluster: ClusterConfig::new(6, 1, 9, 2).unwrap(),
//!     max_steps: 3,
//!     ..RuntimeConfig::default_for_tests()
//! };
//! let report = run_cluster(&cfg, |rng| models::small_cnn(8, 2, 10, rng), train).unwrap();
//! assert_eq!(report.final_params.len(), 6);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod cluster;
mod wire;

pub use cluster::{run_cluster, ClusterReport, RuntimeConfig};
pub use wire::{decode, encode, WireError, WireMsg};
