//! Threaded deployment of the GuanYu protocol over real transports.
//!
//! The simulation engines in the `guanyu` crate model the network; this
//! crate actually *runs* the protocol across OS threads, one per node,
//! exchanging binary frames through a pluggable [`Transport`]
//! (DESIGN.md §7):
//!
//! * [`TransportKind::Channel`] — in-process `mpsc` channels with
//!   `Arc`-shared broadcast buffers (the zero-copy gradient plane);
//! * [`TransportKind::TcpLoopback`] — real `std::net` TCP sockets over
//!   `127.0.0.1`: length-prefixed stream framing ([`StreamDecoder`]),
//!   id-carrying handshakes, batched per-peer writer threads flushing many
//!   frames per vectored syscall, a single poll-style reader thread per
//!   node, pooled encode buffers ([`BufPool`]), and a graceful shutdown
//!   that joins every I/O thread.
//!
//! Either way, every model and gradient really is serialised to bytes and
//! parsed back on the receiving side, so the serialization path the
//! paper's §5.3 blames for its low-level-runtime overhead is genuinely
//! exercised (and measured by the `serialization` Criterion bench) — and
//! on TCP the bytes additionally cross the kernel's socket stack. At full
//! quorums both transports produce bit-identical runs and bit-identical
//! [`guanyu::trace::Trace`] digests, the cross-transport consistency
//! contract `tests/engines_consistency.rs` pins.
//!
//! With [`RuntimeConfig::shards`] > 1 the run uses the *sharded gradient
//! plane* (DESIGN.md §9): the parameter vector splits into contiguous
//! ranges, each owned by its own group of server replicas; workers
//! scatter per-range gradient slices ([`Transport::broadcast_range`]) and
//! gather per-range model slices, and at full quorums the run stays
//! bit-identical to the unsharded one.
//!
//! Scope note: the threaded runtime supports Byzantine *workers* (the
//! attacks that forge from observed traffic); fully-omniscient server
//! attacks are exercised in the deterministic engines where the adversary's
//! global view is well-defined (see DESIGN.md §4).
//!
//! # Example
//!
//! ```
//! use guanyu_runtime::{run_cluster, RuntimeConfig};
//! use guanyu::config::ClusterConfig;
//! use data::{synthetic_cifar, SyntheticConfig};
//! use nn::models;
//!
//! let (train, _) = synthetic_cifar(&SyntheticConfig {
//!     train: 64, test: 0, side: 8, ..Default::default()
//! }).unwrap();
//! let cfg = RuntimeConfig {
//!     cluster: ClusterConfig::new(6, 1, 9, 2).unwrap(),
//!     max_steps: 3,
//!     ..RuntimeConfig::default_for_tests()
//! };
//! let report = run_cluster(&cfg, |rng| models::small_cnn(8, 2, 10, rng), train).unwrap();
//! assert_eq!(report.final_params.len(), 6);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod cluster;
mod pool;
mod soak;
mod tcp;
mod transport;
mod wire;

pub use cluster::{
    run_cluster, run_cluster_with, ClusterReport, RunHooks, RuntimeConfig, TransportKind,
    WrapTransport,
};
pub use pool::{BufPool, PoolStats};
pub use soak::{run_soak, run_soak_with, ChurnSpec, SoakConfig, SoakCounters, SoakReport};
pub use tcp::TcpTransport;
pub use transport::{ChannelTransport, Incoming, RecvError, Transport};
pub use wire::{
    decode, encode, encode_range_into, encode_range_shared, encode_shared, prefix_frame,
    write_frames, StreamDecoder, WireError, WireMsg, MAX_ELEMS, MAX_FRAME_BYTES,
};
