//! The threaded cluster: one OS thread per node, frames over channels.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use aggregation::{CoordinateWiseMedian, Gar, GarKind};
use byzantine::{Attack, AttackKind, AttackView};
use data::{Batcher, Dataset};
use guanyu::config::ClusterConfig;
use guanyu::GuanYuError;
use nn::{softmax_cross_entropy, LrSchedule, Sequential};
use tensor::{Tensor, TensorRng};

use crate::wire::{decode, encode, WireMsg};

/// Configuration of a threaded run.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Cluster sizing and quorums.
    pub cluster: ClusterConfig,
    /// Updates each server performs before reporting.
    pub max_steps: u64,
    /// Learning-rate schedule.
    pub lr: LrSchedule,
    /// Server-side gradient GAR.
    pub server_gar: GarKind,
    /// Per-worker mini-batch size.
    pub batch_size: usize,
    /// Master seed.
    pub seed: u64,
    /// Actually-Byzantine workers (last worker ids).
    pub actual_byz_workers: usize,
    /// Their attack (forged from observed models).
    pub worker_attack: Option<AttackKind>,
    /// Safety net: abort the run after this much wall time.
    pub wall_timeout: Duration,
}

impl RuntimeConfig {
    /// Small defaults for tests and the quickstart example.
    pub fn default_for_tests() -> Self {
        RuntimeConfig {
            cluster: ClusterConfig::new(6, 1, 9, 2).expect("valid"),
            max_steps: 3,
            lr: LrSchedule::constant(0.05),
            server_gar: GarKind::MultiKrum,
            batch_size: 8,
            seed: 0,
            actual_byz_workers: 0,
            worker_attack: None,
            wall_timeout: Duration::from_secs(60),
        }
    }
}

/// What a finished run reports.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Final parameter vector of each honest server, in server order.
    pub final_params: Vec<Tensor>,
    /// Total model updates across honest servers.
    pub updates: u64,
    /// Wall-clock duration of the run.
    pub wall_secs: f64,
}

struct Frame {
    /// Sender id — the transport-level peer identity (as a gRPC peer
    /// would carry). Roles still authenticate by message content, exactly
    /// like the paper's implementation, but receivers use the sender id to
    /// fold quorums in a canonical order: aggregation over a quorum is a
    /// function of the received *multiset*, so sorting by sender before
    /// folding removes arrival-order floating-point nondeterminism. A run
    /// whose quorums equal the full honest sender set (q = n − f) is then
    /// bit-reproducible — the property `tests/seed_stability.rs` pins.
    from: usize,
    /// Shared frame bytes: a broadcast encodes once and every receiver
    /// holds the same buffer (zero-copy fan-out on the transport layer).
    /// `Arc<Vec<u8>>` rather than `Arc<[u8]>` so the encoder's `Vec` moves
    /// into the Arc without re-copying the frame.
    payload: Arc<Vec<u8>>,
}

struct Mailboxes {
    senders: Vec<Sender<Frame>>,
}

impl Mailboxes {
    fn send(&self, from: usize, to: usize, msg: &WireMsg) {
        let payload = Arc::new(encode(msg));
        // A disconnected peer (already shut down) is not an error.
        let _ = self.senders[to].send(Frame { from, payload });
    }

    /// Encodes `msg` once and fans the same bytes out to every target.
    fn broadcast(&self, from: usize, targets: impl Iterator<Item = usize>, msg: &WireMsg) {
        let payload = Arc::new(encode(msg));
        for to in targets {
            let _ = self.senders[to].send(Frame {
                from,
                payload: Arc::clone(&payload),
            });
        }
    }
}

const POLL: Duration = Duration::from_millis(20);

/// Takes the first `q` arrivals and re-orders them by sender id: the fold
/// becomes a function of the received multiset rather than of OS-thread
/// scheduling. With full quorums (`q` = sender count) the whole run is
/// bit-reproducible; with partial quorums only the membership — never the
/// fold order — remains timing-dependent.
fn canonical_quorum(mut received: Vec<(usize, Tensor)>, q: usize) -> Vec<Tensor> {
    received.truncate(q);
    received.sort_by_key(|&(from, _)| from);
    received.into_iter().map(|(_, t)| t).collect()
}

#[allow(clippy::too_many_arguments)]
fn server_thread(
    me: usize,
    cfg: RuntimeConfig,
    theta0: Tensor,
    rx: Receiver<Frame>,
    mail: Arc<Mailboxes>,
    done: Arc<AtomicBool>,
    gar: Box<dyn Gar>,
) -> Tensor {
    use std::collections::HashMap;
    let median = CoordinateWiseMedian::new();
    let mut params = theta0;
    let mut step = 0u64;
    let mut grads: HashMap<u64, Vec<(usize, Tensor)>> = HashMap::new();
    let mut exchanges: HashMap<u64, Vec<(usize, Tensor)>> = HashMap::new();
    let mut exchanging = false;
    let servers = cfg.cluster.servers;
    let workers = cfg.cluster.workers;
    let broadcast_model = |params: &Tensor, step: u64| {
        // The tensor clone is a refcount bump and the frame is encoded once
        // for all workers.
        let msg = WireMsg::Model {
            step,
            params: params.clone(),
        };
        mail.broadcast(me, servers..servers + workers, &msg);
    };
    broadcast_model(&params, 0);
    loop {
        if done.load(Ordering::Relaxed) {
            break;
        }
        let frame = match rx.recv_timeout(POLL) {
            Ok(f) => f,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        let msg = match decode(&frame.payload) {
            Ok(m) => m,
            Err(_) => continue, // malformed frame: necessarily Byzantine, drop
        };
        match msg {
            WireMsg::Gradient { step: s, grad }
                if s >= step && grad.len() == params.len() && grad.is_finite() =>
            {
                grads.entry(s).or_default().push((frame.from, grad));
            }
            WireMsg::Exchange { step: s, params: p }
                if s >= step && p.len() == params.len() && p.is_finite() =>
            {
                exchanges.entry(s).or_default().push((frame.from, p));
            }
            _ => {}
        }

        // Fold gradients once the quorum for the current step is in.
        if !exchanging {
            let q = cfg.cluster.worker_quorum;
            if grads.get(&step).is_some_and(|v| v.len() >= q) {
                let received = canonical_quorum(grads.remove(&step).expect("checked"), q);
                if let Ok(agg) = gar.aggregate(&received) {
                    let lr = cfg.lr.at(step);
                    params.axpy(-lr, &agg).expect("fixed dims");
                    if servers > 1 {
                        exchanging = true;
                        exchanges
                            .entry(step)
                            .or_default()
                            .push((me, params.clone()));
                        let msg = WireMsg::Exchange {
                            step,
                            params: params.clone(),
                        };
                        mail.broadcast(me, (0..servers).filter(|&s| s != me), &msg);
                    } else {
                        step += 1;
                        if step >= cfg.max_steps {
                            break;
                        }
                        broadcast_model(&params, step);
                    }
                }
            }
        }
        if exchanging {
            let q = cfg.cluster.server_quorum;
            if exchanges.get(&step).is_some_and(|v| v.len() >= q) {
                let received = canonical_quorum(exchanges.remove(&step).expect("checked"), q);
                if let Ok(folded) = median.aggregate(&received) {
                    params = folded;
                }
                exchanging = false;
                step += 1;
                grads.retain(|&s, _| s >= step);
                exchanges.retain(|&s, _| s >= step);
                if step >= cfg.max_steps {
                    break;
                }
                broadcast_model(&params, step);
            }
        }
    }
    params
}

#[allow(clippy::too_many_arguments)]
fn worker_thread(
    me: usize,
    cfg: RuntimeConfig,
    mut model: Sequential,
    mut batcher: Batcher,
    train: Arc<Dataset>,
    rx: Receiver<Frame>,
    mail: Arc<Mailboxes>,
    done: Arc<AtomicBool>,
) {
    use std::collections::HashMap;
    let median = CoordinateWiseMedian::new();
    let mut step = 0u64;
    let mut models: HashMap<u64, Vec<(usize, Tensor)>> = HashMap::new();
    let q = cfg.cluster.server_quorum;
    loop {
        if done.load(Ordering::Relaxed) {
            break;
        }
        let frame = match rx.recv_timeout(POLL) {
            Ok(f) => f,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        if let Ok(WireMsg::Model { step: s, params }) = decode(&frame.payload) {
            if s >= step && params.is_finite() {
                models.entry(s).or_default().push((frame.from, params));
            }
        }
        while models.get(&step).is_some_and(|v| v.len() >= q) {
            let received = canonical_quorum(models.remove(&step).expect("checked"), q);
            let folded = match median.aggregate(&received) {
                Ok(f) => f,
                Err(_) => break,
            };
            if model.set_param_vector(&folded).is_err() {
                break;
            }
            model.zero_grads();
            let grad = batcher.next_batch(&train).ok().and_then(|(x, labels)| {
                let logits = model.forward(&x, true).ok()?;
                let (_, dl) = softmax_cross_entropy(&logits, &labels).ok()?;
                model.backward(&dl).ok()?;
                Some(model.grad_vector())
            });
            let grad = match grad {
                Some(g) => g,
                None => break,
            };
            let msg = WireMsg::Gradient { step, grad };
            mail.broadcast(me, 0..cfg.cluster.servers, &msg);
            step += 1;
            models.retain(|&s, _| s >= step);
        }
    }
}

fn byzantine_worker_thread(
    me: usize,
    cfg: RuntimeConfig,
    mut attack: Box<dyn Attack>,
    rx: Receiver<Frame>,
    mail: Arc<Mailboxes>,
    done: Arc<AtomicBool>,
) {
    use std::collections::HashMap;
    let mut observed: HashMap<u64, Vec<Tensor>> = HashMap::new();
    let mut forged: HashMap<u64, bool> = HashMap::new();
    loop {
        if done.load(Ordering::Relaxed) {
            break;
        }
        let frame = match rx.recv_timeout(POLL) {
            Ok(f) => f,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        if let Ok(WireMsg::Model { step, params }) = decode(&frame.payload) {
            observed.entry(step).or_default().push(params);
            if forged.contains_key(&step) {
                continue;
            }
            forged.insert(step, true);
            let honest = observed[&step].clone();
            for (r, s) in (0..cfg.cluster.servers).enumerate() {
                let view = AttackView::new(&honest, step, r);
                if let Some(g) = attack.forge(&view) {
                    mail.send(me, s, &WireMsg::Gradient { step, grad: g });
                }
            }
            observed.retain(|&s, _| s + 2 >= step);
        }
    }
}

/// Runs a full cluster on OS threads until every honest server completes
/// `max_steps` updates (or the wall timeout fires).
///
/// # Errors
///
/// Returns [`GuanYuError::InvalidConfig`] for invalid configurations and
/// when the run exceeds `wall_timeout`.
pub fn run_cluster(
    cfg: &RuntimeConfig,
    model_builder: impl Fn(&mut TensorRng) -> Sequential,
    train: Dataset,
) -> Result<ClusterReport, GuanYuError> {
    if cfg.cluster.servers > 1 {
        cfg.cluster.validate()?;
    }
    if cfg.actual_byz_workers > cfg.cluster.byz_workers {
        return Err(GuanYuError::InvalidConfig(
            "actual Byzantine workers exceed declared".into(),
        ));
    }
    if cfg.actual_byz_workers > 0 && cfg.worker_attack.is_none() {
        return Err(GuanYuError::InvalidConfig(
            "Byzantine workers configured without an attack".into(),
        ));
    }

    let mut rng = TensorRng::new(cfg.seed);
    let mut init_rng = rng.fork(0xA11);
    let theta0 = model_builder(&mut init_rng).param_vector();

    let total = cfg.cluster.servers + cfg.cluster.workers;
    let mut senders = Vec::with_capacity(total);
    let mut receivers = Vec::with_capacity(total);
    for _ in 0..total {
        let (tx, rx) = channel::<Frame>();
        senders.push(tx);
        receivers.push(rx);
    }
    let mail = Arc::new(Mailboxes { senders });
    let done = Arc::new(AtomicBool::new(false));
    let train = Arc::new(train);

    let start = Instant::now();
    let mut server_handles = Vec::new();
    let mut receivers = receivers.into_iter();
    for s in 0..cfg.cluster.servers {
        let rx = receivers.next().expect("one receiver per node");
        let gar = cfg
            .server_gar
            .build(cfg.cluster.krum_f())
            .map_err(|e| GuanYuError::InvalidConfig(e.to_string()))?;
        let cfg = cfg.clone();
        let theta0 = theta0.clone();
        let mail = Arc::clone(&mail);
        let done = Arc::clone(&done);
        server_handles.push(std::thread::spawn(move || {
            server_thread(s, cfg, theta0, rx, mail, done, gar)
        }));
    }
    let honest_workers = cfg.cluster.workers - cfg.actual_byz_workers;
    let mut worker_handles = Vec::new();
    for w in 0..cfg.cluster.workers {
        let id = cfg.cluster.servers + w;
        let rx = receivers.next().expect("one receiver per node");
        let cfg_c = cfg.clone();
        let mail = Arc::clone(&mail);
        let done = Arc::clone(&done);
        if w < honest_workers {
            let mut worker_rng = rng.fork(0xB0B + w as u64);
            let model = model_builder(&mut worker_rng);
            let batcher = Batcher::new(train.len(), cfg.batch_size, cfg.seed ^ (w as u64) << 17);
            let train = Arc::clone(&train);
            worker_handles.push(std::thread::spawn(move || {
                worker_thread(id, cfg_c, model, batcher, train, rx, mail, done)
            }));
        } else {
            let attack = cfg
                .worker_attack
                .expect("validated above")
                .build(cfg.seed ^ 0xEB1 ^ (w as u64) << 8);
            worker_handles.push(std::thread::spawn(move || {
                byzantine_worker_thread(id, cfg_c, attack, rx, mail, done)
            }));
        }
    }

    // Join servers with a wall timeout (a stalled Byzantine-heavy run must
    // not hang the caller).
    let mut final_params = Vec::with_capacity(server_handles.len());
    for h in server_handles {
        loop {
            if h.is_finished() {
                final_params.push(h.join().expect("server thread panicked"));
                break;
            }
            if start.elapsed() > cfg.wall_timeout {
                done.store(true, Ordering::Relaxed);
                return Err(GuanYuError::InvalidConfig(format!(
                    "run exceeded wall timeout of {:?}",
                    cfg.wall_timeout
                )));
            }
            std::thread::sleep(POLL);
        }
    }
    done.store(true, Ordering::Relaxed);
    for h in worker_handles {
        let _ = h.join();
    }

    let updates = cfg.max_steps * cfg.cluster.servers as u64;
    Ok(ClusterReport {
        final_params,
        updates,
        wall_secs: start.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use data::{synthetic_cifar, SyntheticConfig};
    use nn::models;

    fn train_data() -> Dataset {
        synthetic_cifar(&SyntheticConfig {
            train: 64,
            test: 0,
            side: 8,
            ..Default::default()
        })
        .unwrap()
        .0
    }

    fn builder(rng: &mut TensorRng) -> Sequential {
        models::small_cnn(8, 2, 10, rng)
    }

    #[test]
    fn honest_cluster_completes() {
        let cfg = RuntimeConfig {
            max_steps: 3,
            ..RuntimeConfig::default_for_tests()
        };
        let report = run_cluster(&cfg, builder, train_data()).unwrap();
        assert_eq!(report.final_params.len(), 6);
        assert!(report.wall_secs > 0.0);
    }

    #[test]
    fn servers_agree_after_run() {
        let cfg = RuntimeConfig {
            max_steps: 4,
            ..RuntimeConfig::default_for_tests()
        };
        let report = run_cluster(&cfg, builder, train_data()).unwrap();
        let diam = aggregation::properties::diameter(&report.final_params).unwrap();
        let scale = report.final_params[0].norm().max(1.0);
        assert!(diam < scale, "server diameter {diam} vs scale {scale}");
    }

    #[test]
    fn byzantine_workers_tolerated() {
        let cfg = RuntimeConfig {
            max_steps: 3,
            actual_byz_workers: 2,
            worker_attack: Some(AttackKind::Random { scale: 100.0 }),
            ..RuntimeConfig::default_for_tests()
        };
        let report = run_cluster(&cfg, builder, train_data()).unwrap();
        assert_eq!(report.final_params.len(), 6);
        for p in &report.final_params {
            assert!(p.is_finite(), "attack must not corrupt honest servers");
        }
    }

    #[test]
    fn mute_byzantine_workers_tolerated() {
        let cfg = RuntimeConfig {
            max_steps: 2,
            actual_byz_workers: 2,
            worker_attack: Some(AttackKind::Mute),
            ..RuntimeConfig::default_for_tests()
        };
        let report = run_cluster(&cfg, builder, train_data()).unwrap();
        assert_eq!(report.final_params.len(), 6);
    }

    #[test]
    fn rejects_invalid_byzantine_counts() {
        let cfg = RuntimeConfig {
            actual_byz_workers: 5, // declared 2
            worker_attack: Some(AttackKind::Mute),
            ..RuntimeConfig::default_for_tests()
        };
        assert!(run_cluster(&cfg, builder, train_data()).is_err());
    }

    #[test]
    fn single_server_vanilla_shape() {
        let cfg = RuntimeConfig {
            cluster: ClusterConfig::single_server(4),
            server_gar: GarKind::Average,
            max_steps: 3,
            ..RuntimeConfig::default_for_tests()
        };
        let report = run_cluster(&cfg, builder, train_data()).unwrap();
        assert_eq!(report.final_params.len(), 1);
    }
}
