//! The threaded cluster: one OS thread per node, frames over a pluggable
//! [`Transport`] — in-process channels or real TCP loopback sockets.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::soak::SoakCounters;
use std::time::{Duration, Instant};

use aggregation::kernel::{self, Exec};
use aggregation::{CoordinateWiseMedian, Gar, GarKind};
use byzantine::{Attack, AttackKind, AttackView};
use data::{Batcher, Dataset};
use guanyu::config::ClusterConfig;
use guanyu::shard::{ShardGather, ShardPlan};
use guanyu::trace::{positional_digest, DigestHasher, RoundDigest, Trace};
use guanyu::GuanYuError;
use nn::{softmax_cross_entropy, LrSchedule, Sequential};
use tensor::{Tensor, TensorRng};

use crate::pool::PoolStats;
use crate::tcp::TcpTransport;
use crate::transport::{ChannelTransport, RecvError, Transport};
use crate::wire::{decode, WireMsg};

/// Which interconnect carries the frames (DESIGN.md §7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// In-process `mpsc` channels with `Arc`-shared broadcast buffers.
    #[default]
    Channel,
    /// Real TCP sockets over `127.0.0.1`: length-prefixed stream framing,
    /// id-carrying handshakes, batched per-peer writer threads, one
    /// poll-style reader thread per node.
    TcpLoopback,
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportKind::Channel => write!(f, "channel"),
            TransportKind::TcpLoopback => write!(f, "tcp"),
        }
    }
}

/// Configuration of a threaded run.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Cluster sizing and quorums.
    pub cluster: ClusterConfig,
    /// Updates each server performs before reporting.
    pub max_steps: u64,
    /// Learning-rate schedule.
    pub lr: LrSchedule,
    /// Server-side gradient GAR.
    pub server_gar: GarKind,
    /// Per-worker mini-batch size.
    pub batch_size: usize,
    /// Master seed.
    pub seed: u64,
    /// Actually-Byzantine workers (last worker ids).
    pub actual_byz_workers: usize,
    /// Their attack (forged from observed models).
    pub worker_attack: Option<AttackKind>,
    /// Safety net: abort the run after this much wall time.
    pub wall_timeout: Duration,
    /// The interconnect the frames travel over.
    pub transport: TransportKind,
    /// Shard groups of the gradient plane (DESIGN.md §9). With `k` shards
    /// the parameter vector is split into `k` contiguous ranges and the
    /// server plane into `k` groups of `cluster.servers` replicas each:
    /// group `g` occupies raw node ids `g*servers..(g+1)*servers` and owns
    /// only range `g`. Workers scatter per-range gradient slices and
    /// gather per-range model slices; at full quorums a sharded run is
    /// bit-identical (trace and final parameters) to the unsharded one.
    /// `1` is the classic unsharded plane.
    pub shards: usize,
    /// Worker fast-forward recovery: a worker whose current step can no
    /// longer fill its model quorum (frames lost to churn or crashes)
    /// jumps to the newest step that *is* fully quorate instead of
    /// stalling forever. Off by default — on a lossless run every quorum
    /// eventually fills and skipping would forfeit rounds.
    pub recovery: bool,
}

impl RuntimeConfig {
    /// Small defaults for tests and the quickstart example.
    pub fn default_for_tests() -> Self {
        RuntimeConfig {
            cluster: ClusterConfig::new(6, 1, 9, 2).expect("valid"),
            max_steps: 3,
            lr: LrSchedule::constant(0.05),
            server_gar: GarKind::MultiKrum,
            batch_size: 8,
            seed: 0,
            actual_byz_workers: 0,
            worker_attack: None,
            wall_timeout: Duration::from_secs(60),
            transport: TransportKind::Channel,
            shards: 1,
            recovery: false,
        }
    }
}

/// Wraps a node's endpoint before its thread starts (fault-injection
/// decorators like the soak's churn transport). The `usize` is the node's
/// wire id: servers first, then workers.
pub type WrapTransport = Arc<dyn Fn(usize, Box<dyn Transport>) -> Box<dyn Transport> + Send + Sync>;

/// Instrumentation hooks threaded through [`run_cluster_with`].
#[derive(Clone)]
pub struct RunHooks {
    /// Endpoint decorator, applied to every node.
    pub wrap: Option<WrapTransport>,
    /// Live counters the node threads bump while running.
    pub counters: Arc<SoakCounters>,
}

impl Default for RunHooks {
    fn default() -> Self {
        RunHooks {
            wrap: None,
            counters: Arc::new(SoakCounters::default()),
        }
    }
}

/// What a finished run reports.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Final parameter vector of each honest server, in server order.
    pub final_params: Vec<Tensor>,
    /// Total model updates across honest servers.
    pub updates: u64,
    /// Wall-clock duration of the run.
    pub wall_secs: f64,
    /// Per-round digests of the run (see [`run_trace`]): at full quorums
    /// this is a deterministic function of seed and config, identical
    /// across transports.
    pub trace: Trace,
    /// Sends that found their peer already disconnected, summed over all
    /// node endpoints. A clean full-quorum run drops nothing — the
    /// regression `tests` assert exactly zero.
    pub dropped_sends: u64,
    /// Links severed abnormally (poisoned streams, socket errors, wedged
    /// peers), summed over all node endpoints
    /// ([`Transport::link_failures`]). Always 0 on the channel plane and
    /// on clean TCP runs.
    pub link_failures: u64,
    /// Mesh-shared frame-pool counters ([`PoolStats`]): every endpoint
    /// snapshots the same pool at shutdown, so the report keeps the
    /// latest (field-wise largest) snapshot rather than a sum.
    pub pool: PoolStats,
}

/// One server's per-round record, kept locally (no cross-thread
/// coordination on the hot path) and folded into a [`Trace`] after the
/// join.
#[derive(Debug, Default, Clone)]
struct ServerLog {
    rounds: Vec<ServerRound>,
}

#[derive(Debug, Clone)]
struct ServerRound {
    /// Positional digest of this server's (shard of the) parameters after
    /// the round, keyed by absolute coordinate index so per-shard digests
    /// XOR together into exactly the full-vector digest.
    model_digest: u64,
    /// Gradient-quorum senders, canonical (sorted) order.
    grad_quorum: Vec<usize>,
    /// Exchange-quorum senders, canonical order (empty for 1 server).
    exch_quorum: Vec<usize>,
}

/// Folds per-server round logs into one [`Trace`] over *logical replicas*:
/// round `r`'s digest covers, for each of the `replicas` logical servers,
/// the XOR of its shard groups' positional model digests (== the digest of
/// the merged full vector), the quorum compositions translated from raw
/// node ids back to logical ids, and the number of messages folded. When
/// every shard group of a replica saw the same translated quorums (always
/// true at full quorums) the composition is recorded once — so a sharded
/// run's trace is byte-identical to the unsharded run's. The format
/// matches the deterministic engines' *shape* but not their physics —
/// compare threaded traces only with threaded traces (channel vs TCP), as
/// DESIGN.md §6 prescribes for cross-engine fingerprints.
fn assemble_trace(logs: &[ServerLog], shards: usize, replicas: usize) -> Trace {
    let mut trace = Trace::new();
    let rounds = logs.iter().map(|l| l.rounds.len()).min().unwrap_or(0);
    let plane = shards * replicas;
    // Raw wire id -> logical id: server `g*n + r` is replica `r`, worker
    // `plane + j` is logical `n + j`.
    let translate = |raw: usize| {
        if raw < plane {
            raw % replicas
        } else {
            replicas + (raw - plane)
        }
    };
    for step in 0..rounds {
        let mut model = DigestHasher::new();
        let mut quorum = DigestHasher::new();
        let mut messages = 0u64;
        for r in 0..replicas {
            let mut digest = 0u64;
            let mut groups: Vec<(Vec<usize>, Vec<usize>)> = Vec::with_capacity(shards);
            for g in 0..shards {
                let round = &logs[g * replicas + r].rounds[step];
                digest ^= round.model_digest;
                groups.push((
                    round.grad_quorum.iter().map(|&x| translate(x)).collect(),
                    round.exch_quorum.iter().map(|&x| translate(x)).collect(),
                ));
            }
            model.write_u64(digest);
            let collapsed = groups.iter().all(|pair| pair == &groups[0]);
            let record = if collapsed { &groups[..1] } else { &groups[..] };
            for (grad, exch) in record {
                quorum.write_indices(grad);
                quorum.write_indices(exch);
                messages += (grad.len() + exch.len()) as u64;
            }
        }
        trace.push(RoundDigest {
            step: step as u64,
            model_hash: model.finish(),
            quorum_hash: quorum.finish(),
            messages,
        });
    }
    trace
}

const POLL: Duration = Duration::from_millis(20);

/// Endpoint counters a node thread hands back after shutdown.
#[derive(Debug, Clone, Copy, Default)]
struct NetStats {
    dropped: u64,
    link_failures: u64,
    pool: PoolStats,
}

impl NetStats {
    fn collect(net: &dyn Transport) -> NetStats {
        NetStats {
            dropped: net.dropped_sends(),
            link_failures: net.link_failures(),
            pool: net.pool_stats(),
        }
    }
}

/// Every endpoint snapshots the *same* mesh-shared pool at its own
/// shutdown instant; the latest snapshot has the largest (monotonic)
/// counters, so a field-wise max keeps it without double counting.
fn fold_pool(acc: &mut PoolStats, snap: PoolStats) {
    acc.fresh = acc.fresh.max(snap.fresh);
    acc.recycled = acc.recycled.max(snap.recycled);
    acc.high_water = acc.high_water.max(snap.high_water);
}

/// Announces a server's model to the workers. The tensor clone is a
/// refcount bump and the frame is encoded once for all targets.
fn broadcast_model(net: &mut dyn Transport, worker_ids: &[usize], step: u64, params: &Tensor) {
    net.broadcast(
        worker_ids,
        &WireMsg::Model {
            step,
            params: params.clone(),
        },
    );
}

/// Takes the first `q` arrivals and re-orders them by sender id: the fold
/// becomes a function of the received multiset rather than of OS-thread
/// scheduling. With full quorums (`q` = sender count) the whole run is
/// bit-reproducible; with partial quorums only the membership — never the
/// fold order — remains timing-dependent.
fn canonical_quorum(mut received: Vec<(usize, Tensor)>, q: usize) -> (Vec<usize>, Vec<Tensor>) {
    received.truncate(q);
    received.sort_by_key(|&(from, _)| from);
    received.into_iter().unzip()
}

#[allow(clippy::too_many_arguments)] // one thread entry point, not an API
fn server_thread(
    cfg: RuntimeConfig,
    theta0: Tensor,
    shard_offset: usize,
    worker_ids: Vec<usize>,
    peer_servers: Vec<usize>,
    mut net: Box<dyn Transport>,
    done: Arc<AtomicBool>,
    gar: Box<dyn Gar>,
    counters: Arc<SoakCounters>,
) -> (Tensor, ServerLog, NetStats) {
    use std::collections::HashMap;
    let me = net.me();
    let median = CoordinateWiseMedian::new();
    let mut params = theta0;
    let mut step = 0u64;
    let mut grads: HashMap<u64, Vec<(usize, Tensor)>> = HashMap::new();
    let mut exchanges: HashMap<u64, Vec<(usize, Tensor)>> = HashMap::new();
    let mut exchanging = false;
    let mut round_grad_quorum: Vec<usize> = Vec::new();
    let mut log = ServerLog::default();
    broadcast_model(net.as_mut(), &worker_ids, 0, &params);
    loop {
        if done.load(Ordering::Relaxed) {
            break;
        }
        let frame = match net.recv_timeout(POLL) {
            Ok(f) => f,
            Err(RecvError::Timeout) => continue,
            Err(RecvError::Closed) => break,
        };
        let msg = match decode(&frame.payload) {
            Ok(m) => m,
            Err(_) => continue, // malformed frame: necessarily Byzantine, drop
        };
        match msg {
            WireMsg::Gradient { step: s, grad }
                if s >= step && grad.len() == params.len() && grad.is_finite() =>
            {
                grads.entry(s).or_default().push((frame.from, grad));
            }
            WireMsg::Exchange { step: s, params: p }
                if s >= step && p.len() == params.len() && p.is_finite() =>
            {
                exchanges.entry(s).or_default().push((frame.from, p));
            }
            _ => {}
        }

        // Fold gradients once the quorum for the current step is in.
        if !exchanging {
            let q = cfg.cluster.worker_quorum;
            if grads.get(&step).is_some_and(|v| v.len() >= q) {
                let (senders, received) =
                    canonical_quorum(grads.remove(&step).expect("checked"), q);
                if let Ok(agg) = gar.aggregate(&received) {
                    let lr = cfg.lr.at(step);
                    params.axpy(-lr, &agg).expect("fixed dims");
                    if !peer_servers.is_empty() {
                        exchanging = true;
                        round_grad_quorum = senders;
                        exchanges
                            .entry(step)
                            .or_default()
                            .push((me, params.clone()));
                        let msg = WireMsg::Exchange {
                            step,
                            params: params.clone(),
                        };
                        net.broadcast(&peer_servers, &msg);
                    } else {
                        log.rounds.push(ServerRound {
                            model_digest: positional_digest(shard_offset, params.as_slice()),
                            grad_quorum: senders,
                            exch_quorum: Vec::new(),
                        });
                        if me == 0 {
                            counters.rounds.fetch_add(1, Ordering::Relaxed);
                        }
                        step += 1;
                        if step >= cfg.max_steps {
                            break;
                        }
                        broadcast_model(net.as_mut(), &worker_ids, step, &params);
                    }
                }
            }
        }
        if exchanging {
            let q = cfg.cluster.server_quorum;
            if exchanges.get(&step).is_some_and(|v| v.len() >= q) {
                let (senders, received) =
                    canonical_quorum(exchanges.remove(&step).expect("checked"), q);
                if let Ok(folded) = median.aggregate(&received) {
                    params = folded;
                }
                exchanging = false;
                log.rounds.push(ServerRound {
                    model_digest: positional_digest(shard_offset, params.as_slice()),
                    grad_quorum: std::mem::take(&mut round_grad_quorum),
                    exch_quorum: senders,
                });
                if me == 0 {
                    counters.rounds.fetch_add(1, Ordering::Relaxed);
                }
                step += 1;
                grads.retain(|&s, _| s >= step);
                exchanges.retain(|&s, _| s >= step);
                if step >= cfg.max_steps {
                    break;
                }
                broadcast_model(net.as_mut(), &worker_ids, step, &params);
            }
        }
    }
    net.shutdown();
    let stats = NetStats::collect(net.as_ref());
    (params, log, stats)
}

#[allow(clippy::too_many_arguments)] // one thread entry point, not an API
fn worker_thread(
    cfg: RuntimeConfig,
    plan: ShardPlan,
    mut model: Sequential,
    mut batcher: Batcher,
    train: Arc<Dataset>,
    mut net: Box<dyn Transport>,
    done: Arc<AtomicBool>,
    counters: Arc<SoakCounters>,
) -> NetStats {
    let mut step = 0u64;
    let q = cfg.cluster.server_quorum;
    let n = cfg.cluster.servers;
    let shards = plan.shards();
    let plane = shards * n;
    // Shard group `g`'s server replicas, in raw-id (== replica) order.
    let group_targets: Vec<Vec<usize>> = (0..shards)
        .map(|g| (g * n..(g + 1) * n).collect())
        .collect();
    let mut gather = ShardGather::<Tensor>::new(shards, q);
    'run: loop {
        if done.load(Ordering::Relaxed) {
            break;
        }
        let frame = match net.recv_timeout(POLL) {
            Ok(f) => f,
            Err(RecvError::Timeout) => continue,
            Err(RecvError::Closed) => break,
        };
        if let Ok(WireMsg::Model { step: s, params }) = decode(&frame.payload) {
            // A model slice is accepted only from a server raw id and only
            // at its shard group's exact width — anything else is
            // necessarily Byzantine (or stale) and dropped.
            if s >= step && frame.from < plane && params.is_finite() {
                let g = frame.from / n;
                if params.len() == plan.range(g).len() {
                    gather.insert(s, g, frame.from, params);
                }
            }
        }
        // Recovery fast-forward: only when the *current* step can no
        // longer fill (its frames were cut by churn) — a completable step
        // is never skipped, so on a lossless run this never fires. A step
        // counts as completable only when *every* shard group is quorate.
        if cfg.recovery && !gather.is_complete(step) {
            if let Some(newest) = gather.newest_complete(step) {
                step = newest;
                gather.retain_from(step);
                counters.recoveries.fetch_add(1, Ordering::Relaxed);
            }
        }
        while let Some(per_shard) = gather.take(step) {
            // Per-shard median folds write disjoint ranges of one output
            // vector; coordinate-wise rules tile, so the result is
            // bit-identical to the unsharded full-vector fold.
            let mut out = vec![0.0f32; plan.d()];
            for (g, received) in per_shard.into_iter().enumerate() {
                let (_, tensors) = canonical_quorum(received, q);
                kernel::median_into(
                    Exec::auto(),
                    &kernel::views(&tensors),
                    &mut out[plan.range(g)],
                );
            }
            if model.set_param_vector(&Tensor::from_flat(out)).is_err() {
                break 'run;
            }
            model.zero_grads();
            let grad = batcher.next_batch(&train).ok().and_then(|(x, labels)| {
                let logits = model.forward(&x, true).ok()?;
                let (_, dl) = softmax_cross_entropy(&logits, &labels).ok()?;
                model.backward(&dl).ok()?;
                Some(model.grad_vector())
            });
            let grad = match grad {
                Some(g) => g,
                None => break 'run,
            };
            // Scatter: each shard group receives one frame carrying only
            // its range, encoded straight off the full gradient's buffer.
            let msg = WireMsg::Gradient { step, grad };
            for (g, targets) in group_targets.iter().enumerate() {
                net.broadcast_range(targets, &msg, plan.range(g));
            }
            step += 1;
            gather.retain_from(step);
        }
    }
    net.shutdown();
    NetStats::collect(net.as_ref())
}

fn byzantine_worker_thread(
    cfg: RuntimeConfig,
    mut attack: Box<dyn Attack>,
    mut net: Box<dyn Transport>,
    done: Arc<AtomicBool>,
) -> NetStats {
    use std::collections::{HashMap, HashSet};
    let n = cfg.cluster.servers;
    // Forgery is per (step, shard group): each group sees only its own
    // parameter range, so the attack observes and forges slices.
    let mut observed: HashMap<(u64, usize), Vec<Tensor>> = HashMap::new();
    let mut forged: HashSet<(u64, usize)> = HashSet::new();
    loop {
        if done.load(Ordering::Relaxed) {
            break;
        }
        let frame = match net.recv_timeout(POLL) {
            Ok(f) => f,
            Err(RecvError::Timeout) => continue,
            Err(RecvError::Closed) => break,
        };
        if let Ok(WireMsg::Model { step, params }) = decode(&frame.payload) {
            let group = frame.from / n;
            observed.entry((step, group)).or_default().push(params);
            if !forged.insert((step, group)) {
                continue;
            }
            let honest = observed[&(step, group)].clone();
            for r in 0..n {
                let view = AttackView::new(&honest, step, r);
                if let Some(g) = attack.forge(&view) {
                    net.send(group * n + r, &WireMsg::Gradient { step, grad: g });
                }
            }
            observed.retain(|&(s, _), _| s + 2 >= step);
            forged.retain(|&(s, _)| s + 2 >= step);
        }
    }
    net.shutdown();
    NetStats::collect(net.as_ref())
}

/// Builds one endpoint per node on the configured interconnect. The TCP
/// mesh links only what the protocol uses: servers within one shard group
/// exchange with each other, workers talk to every server, and shard
/// groups never talk across — so at `k` shards the inter-server link count
/// drops by ~`k×` on top of the worker↔worker links already skipped.
fn build_endpoints(cfg: &RuntimeConfig) -> Result<Vec<Box<dyn Transport>>, GuanYuError> {
    let n = cfg.cluster.servers;
    let plane = cfg.shards.max(1) * n;
    let total = plane + cfg.cluster.workers;
    match cfg.transport {
        TransportKind::Channel => Ok(ChannelTransport::mesh(total)
            .into_iter()
            .map(|t| Box::new(t) as Box<dyn Transport>)
            .collect()),
        TransportKind::TcpLoopback => {
            let mesh = TcpTransport::mesh(total, move |a, b| {
                let (sa, sb) = (a < plane, b < plane);
                if sa && sb {
                    a / n == b / n // same shard group exchanges models
                } else {
                    sa || sb // worker ↔ server; never worker ↔ worker
                }
            })
            .map_err(|e| GuanYuError::Transport(format!("tcp mesh: {e}")))?;
            Ok(mesh
                .into_iter()
                .map(|t| Box::new(t) as Box<dyn Transport>)
                .collect())
        }
    }
}

/// Runs a full cluster on OS threads until every honest server completes
/// `max_steps` updates (or the wall timeout fires).
///
/// # Errors
///
/// Returns [`GuanYuError::InvalidConfig`] for invalid configurations and
/// when the run exceeds `wall_timeout`, [`GuanYuError::Transport`] when
/// the interconnect cannot be built.
pub fn run_cluster(
    cfg: &RuntimeConfig,
    model_builder: impl Fn(&mut TensorRng) -> Sequential,
    train: Dataset,
) -> Result<ClusterReport, GuanYuError> {
    run_cluster_with(cfg, model_builder, train, RunHooks::default())
}

/// [`run_cluster`] with instrumentation [`RunHooks`]: an endpoint
/// decorator applied per node and live counters (the soak mode's churn
/// injection and monitor line are built on these).
///
/// # Errors
///
/// See [`run_cluster`].
pub fn run_cluster_with(
    cfg: &RuntimeConfig,
    model_builder: impl Fn(&mut TensorRng) -> Sequential,
    train: Dataset,
    hooks: RunHooks,
) -> Result<ClusterReport, GuanYuError> {
    if cfg.cluster.servers > 1 {
        cfg.cluster.validate()?;
    }
    if cfg.actual_byz_workers > cfg.cluster.byz_workers {
        return Err(GuanYuError::InvalidConfig(
            "actual Byzantine workers exceed declared".into(),
        ));
    }
    if cfg.actual_byz_workers > 0 && cfg.worker_attack.is_none() {
        return Err(GuanYuError::InvalidConfig(
            "Byzantine workers configured without an attack".into(),
        ));
    }

    let mut rng = TensorRng::new(cfg.seed);
    let mut init_rng = rng.fork(0xA11);
    let theta0 = model_builder(&mut init_rng).param_vector();
    let plan = ShardPlan::even(theta0.len(), cfg.shards)
        .map_err(|e| GuanYuError::InvalidConfig(format!("shard plan: {e}")))?;
    let shards = plan.shards();
    let n = cfg.cluster.servers;
    let plane = shards * n;

    let mut endpoints = build_endpoints(cfg)?.into_iter();
    let done = Arc::new(AtomicBool::new(false));
    let train = Arc::new(train);
    let decorate = |id: usize, net: Box<dyn Transport>| match &hooks.wrap {
        Some(wrap) => wrap(id, net),
        None => net,
    };

    let start = Instant::now();
    let worker_ids: Vec<usize> = (plane..plane + cfg.cluster.workers).collect();
    let mut server_handles = Vec::new();
    for g in 0..shards {
        let range = plan.range(g);
        // Zero-copy view of the group's slice of θ₀, materialised once per
        // group and refcount-cloned to its replicas.
        let theta_g = theta0
            .shard_view(range.clone())
            .expect("plan ranges are in bounds")
            .to_tensor();
        for r in 0..n {
            let id = g * n + r;
            let net = decorate(id, endpoints.next().expect("one endpoint per node"));
            let gar = cfg
                .server_gar
                .build(cfg.cluster.krum_f())
                .map_err(|e| GuanYuError::InvalidConfig(e.to_string()))?;
            let cfg = cfg.clone();
            let theta_g = theta_g.clone();
            let worker_ids = worker_ids.clone();
            let peer_servers: Vec<usize> = (g * n..(g + 1) * n).filter(|&p| p != id).collect();
            let offset = range.start;
            let done = Arc::clone(&done);
            let counters = Arc::clone(&hooks.counters);
            server_handles.push(std::thread::spawn(move || {
                server_thread(
                    cfg,
                    theta_g,
                    offset,
                    worker_ids,
                    peer_servers,
                    net,
                    done,
                    gar,
                    counters,
                )
            }));
        }
    }
    let honest_workers = cfg.cluster.workers - cfg.actual_byz_workers;
    let mut worker_handles = Vec::new();
    for w in 0..cfg.cluster.workers {
        let id = plane + w;
        let net = decorate(id, endpoints.next().expect("one endpoint per node"));
        let cfg_c = cfg.clone();
        let done = Arc::clone(&done);
        if w < honest_workers {
            let mut worker_rng = rng.fork(0xB0B + w as u64);
            let model = model_builder(&mut worker_rng);
            let batcher = Batcher::new(train.len(), cfg.batch_size, cfg.seed ^ (w as u64) << 17);
            let train = Arc::clone(&train);
            let counters = Arc::clone(&hooks.counters);
            let plan_c = plan.clone();
            worker_handles.push(std::thread::spawn(move || {
                worker_thread(cfg_c, plan_c, model, batcher, train, net, done, counters)
            }));
        } else {
            let attack = cfg
                .worker_attack
                .expect("validated above")
                .build(cfg.seed ^ 0xEB1 ^ (w as u64) << 8);
            worker_handles.push(std::thread::spawn(move || {
                byzantine_worker_thread(cfg_c, attack, net, done)
            }));
        }
    }

    // Join servers with a wall timeout (a stalled Byzantine-heavy run must
    // not hang the caller).
    let mut raw_params = Vec::with_capacity(server_handles.len());
    let mut server_logs = Vec::with_capacity(server_handles.len());
    let mut dropped_sends = 0u64;
    let mut link_failures = 0u64;
    let mut pool = PoolStats::default();
    let mut timed_out = false;
    for h in server_handles {
        loop {
            if h.is_finished() {
                let (params, log, stats) = h.join().expect("server thread panicked");
                raw_params.push(params);
                server_logs.push(log);
                dropped_sends += stats.dropped;
                link_failures += stats.link_failures;
                fold_pool(&mut pool, stats.pool);
                break;
            }
            if timed_out || start.elapsed() > cfg.wall_timeout {
                // Flag every thread down, then keep draining the joins —
                // even a failed run must not leak node or I/O threads.
                timed_out = true;
                done.store(true, Ordering::Relaxed);
            }
            std::thread::sleep(POLL);
        }
    }
    done.store(true, Ordering::Relaxed);
    for h in worker_handles {
        if let Ok(stats) = h.join() {
            dropped_sends += stats.dropped;
            link_failures += stats.link_failures;
            fold_pool(&mut pool, stats.pool);
        }
    }
    hooks
        .counters
        .dropped_sends
        .fetch_add(dropped_sends, Ordering::Relaxed);
    if timed_out {
        return Err(GuanYuError::InvalidConfig(format!(
            "run exceeded wall timeout of {:?}",
            cfg.wall_timeout
        )));
    }

    // Logical replica `r`'s full parameter vector is the concatenation of
    // its shard groups' slices (raw ids r, n+r, 2n+r, …).
    let mut final_params = Vec::with_capacity(n);
    for r in 0..n {
        if shards == 1 {
            final_params.push(raw_params[r].clone());
        } else {
            let mut flat = Vec::with_capacity(plan.d());
            for g in 0..shards {
                flat.extend_from_slice(raw_params[g * n + r].as_slice());
            }
            final_params.push(Tensor::from_flat(flat));
        }
    }
    let updates = cfg.max_steps * n as u64;
    Ok(ClusterReport {
        final_params,
        updates,
        wall_secs: start.elapsed().as_secs_f64(),
        trace: assemble_trace(&server_logs, shards, n),
        dropped_sends,
        link_failures,
        pool,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use data::{synthetic_cifar, SyntheticConfig};
    use nn::models;

    fn train_data() -> Dataset {
        synthetic_cifar(&SyntheticConfig {
            train: 64,
            test: 0,
            side: 8,
            ..Default::default()
        })
        .unwrap()
        .0
    }

    fn builder(rng: &mut TensorRng) -> Sequential {
        models::small_cnn(8, 2, 10, rng)
    }

    #[test]
    fn honest_cluster_completes() {
        let cfg = RuntimeConfig {
            max_steps: 3,
            ..RuntimeConfig::default_for_tests()
        };
        let report = run_cluster(&cfg, builder, train_data()).unwrap();
        assert_eq!(report.final_params.len(), 6);
        assert!(report.wall_secs > 0.0);
        assert_eq!(report.trace.len(), 3, "one digest per completed round");
    }

    #[test]
    fn servers_agree_after_run() {
        let cfg = RuntimeConfig {
            max_steps: 4,
            ..RuntimeConfig::default_for_tests()
        };
        let report = run_cluster(&cfg, builder, train_data()).unwrap();
        let diam = aggregation::properties::diameter(&report.final_params).unwrap();
        let scale = report.final_params[0].norm().max(1.0);
        assert!(diam < scale, "server diameter {diam} vs scale {scale}");
    }

    #[test]
    fn byzantine_workers_tolerated() {
        let cfg = RuntimeConfig {
            max_steps: 3,
            actual_byz_workers: 2,
            worker_attack: Some(AttackKind::Random { scale: 100.0 }),
            ..RuntimeConfig::default_for_tests()
        };
        let report = run_cluster(&cfg, builder, train_data()).unwrap();
        assert_eq!(report.final_params.len(), 6);
        for p in &report.final_params {
            assert!(p.is_finite(), "attack must not corrupt honest servers");
        }
    }

    #[test]
    fn mute_byzantine_workers_tolerated() {
        let cfg = RuntimeConfig {
            max_steps: 2,
            actual_byz_workers: 2,
            worker_attack: Some(AttackKind::Mute),
            ..RuntimeConfig::default_for_tests()
        };
        let report = run_cluster(&cfg, builder, train_data()).unwrap();
        assert_eq!(report.final_params.len(), 6);
    }

    #[test]
    fn rejects_invalid_byzantine_counts() {
        let cfg = RuntimeConfig {
            actual_byz_workers: 5, // declared 2
            worker_attack: Some(AttackKind::Mute),
            ..RuntimeConfig::default_for_tests()
        };
        assert!(run_cluster(&cfg, builder, train_data()).is_err());
    }

    #[test]
    fn single_server_vanilla_shape() {
        let cfg = RuntimeConfig {
            cluster: ClusterConfig::single_server(4),
            server_gar: GarKind::Average,
            max_steps: 3,
            ..RuntimeConfig::default_for_tests()
        };
        let report = run_cluster(&cfg, builder, train_data()).unwrap();
        assert_eq!(report.final_params.len(), 1);
        assert_eq!(report.trace.len(), 3);
    }

    #[test]
    fn full_quorum_run_drops_nothing() {
        // Full quorums: every server waits for every worker and every
        // peer server, so nobody exits while traffic is still in flight.
        let cfg = RuntimeConfig {
            cluster: ClusterConfig::with_quorums(3, 0, 4, 0, 3, 4).unwrap(),
            max_steps: 3,
            ..RuntimeConfig::default_for_tests()
        };
        let report = run_cluster(&cfg, builder, train_data()).unwrap();
        assert_eq!(
            report.dropped_sends, 0,
            "clean full-quorum run must not drop sends"
        );
        assert_eq!(
            report.link_failures, 0,
            "clean full-quorum run must not sever links"
        );
        assert!(
            report.pool.fresh > 0 && report.pool.high_water > 0,
            "pool counters must surface in the report: {:?}",
            report.pool
        );
    }

    #[test]
    fn sharded_run_matches_unsharded_bit_for_bit() {
        // Full quorums + a coordinate-wise GAR: sharding must change
        // nothing observable — same trace, same final parameters.
        let base = RuntimeConfig {
            cluster: ClusterConfig::with_quorums(3, 0, 4, 0, 3, 4).unwrap(),
            server_gar: GarKind::Median,
            max_steps: 3,
            ..RuntimeConfig::default_for_tests()
        };
        let flat = run_cluster(&base, builder, train_data()).unwrap();
        let sharded_cfg = RuntimeConfig {
            shards: 2,
            ..base.clone()
        };
        let sharded = run_cluster(&sharded_cfg, builder, train_data()).unwrap();
        assert_eq!(flat.trace, sharded.trace, "traces must be identical");
        assert_eq!(
            flat.trace.fingerprint(),
            sharded.trace.fingerprint(),
            "fingerprints must be identical"
        );
        assert_eq!(flat.final_params.len(), sharded.final_params.len());
        for (a, b) in flat.final_params.iter().zip(&sharded.final_params) {
            assert_eq!(
                a.as_slice(),
                b.as_slice(),
                "merged sharded parameters must be bit-identical"
            );
        }
        assert_eq!(sharded.updates, flat.updates, "logical replica updates");
        assert_eq!(sharded.dropped_sends, 0);
        assert_eq!(sharded.link_failures, 0);
    }

    #[test]
    fn rejects_zero_shards() {
        let cfg = RuntimeConfig {
            shards: 0,
            ..RuntimeConfig::default_for_tests()
        };
        let err = run_cluster(&cfg, builder, train_data()).unwrap_err();
        assert!(err.to_string().contains("shard"), "{err}");
    }

    #[test]
    fn rejects_more_shards_than_coordinates() {
        let cfg = RuntimeConfig {
            shards: 100_000_000,
            ..RuntimeConfig::default_for_tests()
        };
        let err = run_cluster(&cfg, builder, train_data()).unwrap_err();
        assert!(err.to_string().contains("shard"), "{err}");
    }
}
