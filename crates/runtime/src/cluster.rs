//! The threaded cluster: one OS thread per node, frames over a pluggable
//! [`Transport`] — in-process channels or real TCP loopback sockets.
//!
//! Every node thread is a thin driver over the sans-I/O machines of
//! [`guanyu::node`]: it decodes wire frames into [`NodeMsg`]s, feeds them
//! to its machine, and puts the machine's outbound messages back on the
//! wire. All protocol logic — quorum ledgers, GAR folds, the contraction
//! exchange, crash adoption, Byzantine forging — lives in the shared
//! machines, so the threaded runtime cannot drift from the lockstep and
//! event-driven engines (DESIGN.md §11). What remains here is exactly the
//! driver contract: transport I/O, thread lifecycle, the gradient data
//! pipeline (forward/backward at the machine's folded model), and the
//! shard-plane scatter/gather (DESIGN.md §9).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::soak::SoakCounters;
use std::time::{Duration, Instant};

use aggregation::GarKind;
use byzantine::AttackKind;
use data::{Batcher, Dataset};
use guanyu::config::ClusterConfig;
use guanyu::faults::FaultSchedule;
use guanyu::node::{
    self, ByzServerMachine, ByzWorkerMachine, MachineConfig, MachineSpec, NodeMsg, Output,
    QuorumMode, ServerMachine, StepRecord, WorkerMachine,
};
use guanyu::shard::ShardPlan;
use guanyu::trace::Trace;
use guanyu::GuanYuError;
use nn::{softmax_cross_entropy, LrSchedule, Sequential};
use tensor::{Tensor, TensorRng};

use crate::pool::PoolStats;
use crate::tcp::TcpTransport;
use crate::transport::{ChannelTransport, RecvError, Transport};
use crate::wire::{decode, WireMsg};

/// Which interconnect carries the frames (DESIGN.md §7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// In-process `mpsc` channels with `Arc`-shared broadcast buffers.
    #[default]
    Channel,
    /// Real TCP sockets over `127.0.0.1`: length-prefixed stream framing,
    /// id-carrying handshakes, batched per-peer writer threads, one
    /// poll-style reader thread per node.
    TcpLoopback,
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportKind::Channel => write!(f, "channel"),
            TransportKind::TcpLoopback => write!(f, "tcp"),
        }
    }
}

/// Configuration of a threaded run.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Cluster sizing and quorums.
    pub cluster: ClusterConfig,
    /// Updates each server performs before reporting.
    pub max_steps: u64,
    /// Learning-rate schedule.
    pub lr: LrSchedule,
    /// Server-side gradient GAR.
    pub server_gar: GarKind,
    /// Per-worker mini-batch size.
    pub batch_size: usize,
    /// Master seed.
    pub seed: u64,
    /// Actually-Byzantine workers (last worker ids).
    pub actual_byz_workers: usize,
    /// Their attack (forged after observing the honest gradients of the
    /// step through the omniscience taps — the same adversary every
    /// engine faces).
    pub worker_attack: Option<AttackKind>,
    /// Actually-Byzantine servers (last server ids of each shard group).
    pub actual_byz_servers: usize,
    /// Their attack (a reactive cascade forged from the previous round's
    /// observed honest exchanges).
    pub server_attack: Option<AttackKind>,
    /// Safety net: abort the run after this much wall time.
    pub wall_timeout: Duration,
    /// The interconnect the frames travel over.
    pub transport: TransportKind,
    /// Shard groups of the gradient plane (DESIGN.md §9). With `k` shards
    /// the parameter vector is split into `k` contiguous ranges and the
    /// server plane into `k` groups of `cluster.servers` replicas each:
    /// group `g` occupies raw node ids `g*servers..(g+1)*servers` and owns
    /// only range `g`. Workers scatter per-range gradient slices and
    /// gather per-range model slices; at full quorums a sharded run is
    /// bit-identical (trace and final parameters) to the unsharded one.
    /// `1` is the classic unsharded plane.
    pub shards: usize,
    /// Worker fast-forward recovery: a worker whose current step can no
    /// longer fill its model quorum (frames lost to churn or crashes)
    /// jumps to the newest step that *is* fully quorate instead of
    /// stalling forever. Off by default — on a lossless run every quorum
    /// eventually fills and skipping would forfeit rounds.
    pub recovery: bool,
    /// Quorum membership mode of the node machines. [`QuorumMode::Arrival`]
    /// (the default) folds the first `q` arrivals sender-sorted — the
    /// classic timing-dependent threaded run. [`QuorumMode::Planned`]
    /// derives membership purely from `faults` and the step number, making
    /// the trace bit-identical to the lockstep and event-driven engines on
    /// the same config (the scenario runner's cross-engine mode).
    pub mode: QuorumMode,
    /// Round-indexed fault schedule, meaningful in planned mode: crash
    /// windows freeze machines (they discard while down and fast-forward
    /// by adoption on recovery), partitions cut exchange links, attack
    /// windows gate forging. Timing faults (delay spikes, stragglers)
    /// shape no planned membership and are ignored by the wall-clock
    /// engine.
    pub faults: FaultSchedule,
}

impl RuntimeConfig {
    /// Small defaults for tests and the quickstart example.
    pub fn default_for_tests() -> Self {
        RuntimeConfig {
            cluster: ClusterConfig::new(6, 1, 9, 2).expect("valid"),
            max_steps: 3,
            lr: LrSchedule::constant(0.05),
            server_gar: GarKind::MultiKrum,
            batch_size: 8,
            seed: 0,
            actual_byz_workers: 0,
            worker_attack: None,
            actual_byz_servers: 0,
            server_attack: None,
            wall_timeout: Duration::from_secs(60),
            transport: TransportKind::Channel,
            shards: 1,
            recovery: false,
            mode: QuorumMode::Arrival,
            faults: FaultSchedule::none(),
        }
    }

    fn machine_config(&self) -> MachineConfig {
        MachineConfig {
            cluster: self.cluster,
            max_steps: self.max_steps,
            lr: self.lr,
            server_gar: self.server_gar,
            seed: self.seed,
            actual_byz_workers: self.actual_byz_workers,
            worker_attack: self.worker_attack,
            actual_byz_servers: self.actual_byz_servers,
            server_attack: self.server_attack,
            worker_attack_windows: self.faults.worker_attack_windows(),
            server_attack_windows: self.faults.server_attack_windows(),
            exchange_enabled: true,
            robust_worker_fold: true,
            recovery: self.recovery,
            mode: self.mode,
            faults: self.faults.clone(),
        }
    }
}

/// Wraps a node's endpoint before its thread starts (fault-injection
/// decorators like the soak's churn transport). The `usize` is the node's
/// wire id: servers first, then workers.
pub type WrapTransport = Arc<dyn Fn(usize, Box<dyn Transport>) -> Box<dyn Transport> + Send + Sync>;

/// Instrumentation hooks threaded through [`run_cluster_with`].
#[derive(Clone)]
pub struct RunHooks {
    /// Endpoint decorator, applied to every node.
    pub wrap: Option<WrapTransport>,
    /// Live counters the node threads bump while running.
    pub counters: Arc<SoakCounters>,
}

impl Default for RunHooks {
    fn default() -> Self {
        RunHooks {
            wrap: None,
            counters: Arc::new(SoakCounters::default()),
        }
    }
}

/// What a finished run reports.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Final parameter vector of each honest server, in server order.
    pub final_params: Vec<Tensor>,
    /// The step each honest server reached, in server order. On a clean
    /// run every entry is `max_steps`; under planned crash windows a
    /// server that could not adopt back in reports where it froze.
    pub final_steps: Vec<u64>,
    /// Total model updates across honest servers.
    pub updates: u64,
    /// Wall-clock duration of the run.
    pub wall_secs: f64,
    /// Per-round digests of the run, assembled with
    /// [`node::assemble_trace`] — the same canonical folding every engine
    /// uses. In [`QuorumMode::Planned`] the trace is a deterministic
    /// function of seed + config + faults, bit-identical across transports
    /// *and* across engines; in arrival mode only full-quorum runs are
    /// timing-independent.
    pub trace: Trace,
    /// Sends that found their peer already disconnected, summed over all
    /// node endpoints. A clean full-quorum run drops nothing — the
    /// regression `tests` assert exactly zero.
    pub dropped_sends: u64,
    /// Links severed abnormally (poisoned streams, socket errors, wedged
    /// peers), summed over all node endpoints
    /// ([`Transport::link_failures`]). Always 0 on the channel plane and
    /// on clean TCP runs.
    pub link_failures: u64,
    /// Mesh-shared frame-pool counters ([`PoolStats`]): every endpoint
    /// snapshots the same pool at shutdown, so the report keeps the
    /// latest (field-wise largest) snapshot rather than a sum.
    pub pool: PoolStats,
}

const POLL: Duration = Duration::from_millis(20);

/// Endpoint counters a node thread hands back after shutdown.
#[derive(Debug, Clone, Copy, Default)]
struct NetStats {
    dropped: u64,
    link_failures: u64,
    pool: PoolStats,
}

impl NetStats {
    fn collect(net: &dyn Transport) -> NetStats {
        NetStats {
            dropped: net.dropped_sends(),
            link_failures: net.link_failures(),
            pool: net.pool_stats(),
        }
    }
}

/// Every endpoint snapshots the *same* mesh-shared pool at its own
/// shutdown instant; the latest snapshot has the largest (monotonic)
/// counters, so a field-wise max keeps it without double counting.
fn fold_pool(acc: &mut PoolStats, snap: PoolStats) {
    acc.fresh = acc.fresh.max(snap.fresh);
    acc.recycled = acc.recycled.max(snap.recycled);
    acc.high_water = acc.high_water.max(snap.high_water);
}

/// Raw-wire ↔ logical id translation for one node's outbound plane. The
/// machines speak logical ids (servers `0..n`, workers `n..n+n̄`); the wire
/// speaks raw ids (shard group `g`'s replicas at `g*n..(g+1)*n`, workers
/// after the whole server plane). Server-targeted sends stay inside the
/// sender's own shard group — shard groups never talk across.
#[derive(Debug, Clone, Copy)]
struct IdMap {
    /// Shard group whose server replicas this node addresses.
    group: usize,
    /// Logical server replicas per group (`cluster.servers`).
    replicas: usize,
    /// Total server plane width (`shards * replicas`).
    plane: usize,
}

impl IdMap {
    fn raw(&self, logical: usize) -> usize {
        if logical < self.replicas {
            self.group * self.replicas + logical
        } else {
            self.plane + (logical - self.replicas)
        }
    }

    fn logical(&self, raw: usize) -> usize {
        if raw < self.plane {
            raw % self.replicas
        } else {
            self.replicas + (raw - self.plane)
        }
    }
}

fn to_wire(msg: &NodeMsg) -> WireMsg {
    match msg {
        NodeMsg::Model { step, params } => WireMsg::Model {
            step: *step,
            params: params.clone(),
        },
        NodeMsg::Gradient { step, grad } => WireMsg::Gradient {
            step: *step,
            grad: grad.clone(),
        },
        NodeMsg::Exchange { step, params } => WireMsg::Exchange {
            step: *step,
            params: params.clone(),
        },
    }
}

fn to_node(msg: WireMsg) -> NodeMsg {
    match msg {
        WireMsg::Model { step, params } => NodeMsg::Model { step, params },
        WireMsg::Gradient { step, grad } => NodeMsg::Gradient { step, grad },
        WireMsg::Exchange { step, params } => NodeMsg::Exchange { step, params },
    }
}

/// Whether two outbound messages carry the same payload (a machine
/// broadcasting clones one tensor per receiver — a refcount bump, so
/// storage identity detects the fan-out).
fn same_payload(a: &NodeMsg, b: &NodeMsg) -> bool {
    match (a, b) {
        (
            NodeMsg::Model {
                step: s1,
                params: p1,
            },
            NodeMsg::Model {
                step: s2,
                params: p2,
            },
        )
        | (
            NodeMsg::Exchange {
                step: s1,
                params: p1,
            },
            NodeMsg::Exchange {
                step: s2,
                params: p2,
            },
        )
        | (NodeMsg::Gradient { step: s1, grad: p1 }, NodeMsg::Gradient { step: s2, grad: p2 }) => {
            s1 == s2 && p1.shares_storage(p2)
        }
        _ => false,
    }
}

/// Puts a machine's queued sends on the wire. Consecutive sends sharing
/// one payload (a machine-level broadcast) are coalesced into a single
/// transport broadcast so the frame is encoded once for all receivers.
fn flush_sends(net: &mut dyn Transport, map: IdMap, sends: &[(usize, NodeMsg)]) {
    let mut i = 0;
    while i < sends.len() {
        let mut targets = vec![map.raw(sends[i].0)];
        let mut j = i + 1;
        while j < sends.len() && same_payload(&sends[i].1, &sends[j].1) {
            targets.push(map.raw(sends[j].0));
            j += 1;
        }
        net.broadcast(&targets, &to_wire(&sends[i].1));
        i = j;
    }
}

/// Splits a machine's outputs into sends (flushed to the wire) and the
/// rest, bumping the run counters for completed steps and recoveries.
fn drive_outputs(
    out: &mut Vec<Output>,
    net: &mut dyn Transport,
    map: IdMap,
    records: &mut Vec<StepRecord>,
    counters: &SoakCounters,
    count_rounds: bool,
) -> Vec<(u64, Tensor)> {
    let mut sends: Vec<(usize, NodeMsg)> = Vec::new();
    let mut requests = Vec::new();
    for o in out.drain(..) {
        match o {
            Output::Send { to, msg } => sends.push((to, msg)),
            Output::Step(r) => {
                records.push(r);
                if count_rounds {
                    counters.rounds.fetch_add(1, Ordering::Relaxed);
                }
            }
            Output::Recovered { .. } => {
                counters.recoveries.fetch_add(1, Ordering::Relaxed);
            }
            Output::NeedGradient { step, model } => requests.push((step, model)),
        }
    }
    flush_sends(net, map, &sends);
    requests
}

fn server_thread(
    mut machine: ServerMachine,
    map: IdMap,
    mut net: Box<dyn Transport>,
    done: Arc<AtomicBool>,
    counters: Arc<SoakCounters>,
    count_rounds: bool,
) -> (Tensor, u64, Vec<StepRecord>, NetStats) {
    let mut records = Vec::new();
    let mut out = Vec::new();
    machine.on_start(&mut out);
    drive_outputs(
        &mut out,
        net.as_mut(),
        map,
        &mut records,
        &counters,
        count_rounds,
    );
    while !machine.halted() {
        if done.load(Ordering::Relaxed) {
            break;
        }
        let frame = match net.recv_timeout(POLL) {
            Ok(f) => f,
            Err(RecvError::Timeout) => continue,
            Err(RecvError::Closed) => break,
        };
        let msg = match decode(&frame.payload) {
            Ok(m) => m,
            Err(_) => continue, // malformed frame: necessarily Byzantine, drop
        };
        machine.on_message(map.logical(frame.from), &to_node(msg), &mut out);
        drive_outputs(
            &mut out,
            net.as_mut(),
            map,
            &mut records,
            &counters,
            count_rounds,
        );
    }
    net.shutdown();
    let stats = NetStats::collect(net.as_ref());
    (machine.params().clone(), machine.step(), records, stats)
}

fn byzantine_server_thread(
    mut machine: ByzServerMachine,
    map: IdMap,
    mut net: Box<dyn Transport>,
    done: Arc<AtomicBool>,
    counters: Arc<SoakCounters>,
) -> NetStats {
    let mut records = Vec::new();
    let mut out = Vec::new();
    machine.on_start(&mut out);
    drive_outputs(&mut out, net.as_mut(), map, &mut records, &counters, false);
    loop {
        if done.load(Ordering::Relaxed) {
            break;
        }
        let frame = match net.recv_timeout(POLL) {
            Ok(f) => f,
            Err(RecvError::Timeout) => continue,
            Err(RecvError::Closed) => break,
        };
        let Ok(msg) = decode(&frame.payload) else {
            continue;
        };
        machine.on_message(map.logical(frame.from), &to_node(msg), &mut out);
        drive_outputs(&mut out, net.as_mut(), map, &mut records, &counters, false);
    }
    net.shutdown();
    NetStats::collect(net.as_ref())
}

/// The honest-worker data pipeline: one machine per shard group, one
/// model/batcher pair shared across the groups. A gradient is computed
/// once per step — when every group's machine has folded its model slice —
/// and scattered back to the groups as per-range slices.
struct WorkerPipeline {
    machines: Vec<WorkerMachine>,
    plan: ShardPlan,
    model: Sequential,
    batcher: Batcher,
    train: Arc<Dataset>,
    /// Folded model slices awaiting the full set, per step: `pending[step][g]`.
    pending: HashMap<u64, Vec<Option<Tensor>>>,
}

impl WorkerPipeline {
    /// Answers every gradient request whose slice set is complete, and
    /// unblocks groups stuck on a step their sibling groups fast-forwarded
    /// past (recovery mode): those receive a NaN sentinel, which the
    /// machine swallows — the step is skipped, never stalled.
    fn resolve(&mut self, out_by_group: &mut [Vec<Output>]) {
        loop {
            let mut steps: Vec<u64> = self.pending.keys().copied().collect();
            steps.sort_unstable();
            let mut progressed = false;
            for t in steps {
                let slices = &self.pending[&t];
                let complete = slices.iter().all(Option::is_some);
                let abandoned = !complete
                    && slices
                        .iter()
                        .enumerate()
                        .all(|(g, s)| s.is_some() || self.machines[g].step() > t);
                if complete {
                    let slices = self.pending.remove(&t).expect("checked");
                    self.answer(t, slices, out_by_group);
                    progressed = true;
                } else if abandoned {
                    // Some groups skipped `t` (fast-forward): feed the
                    // waiting groups a sentinel so they skip it too.
                    let slices = self.pending.remove(&t).expect("checked");
                    for (g, s) in slices.into_iter().enumerate() {
                        if s.is_some() {
                            let d = self.plan.range(g).len();
                            self.machines[g].gradient_ready(
                                t,
                                Tensor::full(&[d], f32::NAN),
                                &mut out_by_group[g],
                            );
                        }
                    }
                    progressed = true;
                }
            }
            if !progressed {
                return;
            }
        }
    }

    fn answer(&mut self, step: u64, slices: Vec<Option<Tensor>>, out_by_group: &mut [Vec<Output>]) {
        let shards = self.machines.len();
        let view = if shards == 1 {
            slices.into_iter().next().flatten().expect("complete")
        } else {
            let mut flat = Vec::with_capacity(self.plan.d());
            for s in slices {
                flat.extend_from_slice(s.expect("complete").as_slice());
            }
            Tensor::from_flat(flat)
        };
        let grad = self.compute(&view);
        for (g, out) in out_by_group.iter_mut().enumerate() {
            let slice = match &grad {
                Some(full) if shards == 1 => full.clone(),
                Some(full) => full
                    .shard_view(self.plan.range(g))
                    .expect("plan ranges are in bounds")
                    .to_tensor(),
                // Failed forward/backward: a sentinel the machine swallows.
                None => Tensor::full(&[self.plan.range(g).len()], f32::NAN),
            };
            self.machines[g].gradient_ready(step, slice, out);
        }
    }

    fn compute(&mut self, view: &Tensor) -> Option<Tensor> {
        self.model.set_param_vector(view).ok()?;
        self.model.zero_grads();
        let (x, labels) = self.batcher.next_batch(&self.train).ok()?;
        let logits = self.model.forward(&x, true).ok()?;
        let (_, dl) = softmax_cross_entropy(&logits, &labels).ok()?;
        self.model.backward(&dl).ok()?;
        Some(self.model.grad_vector())
    }
}

fn worker_thread(
    mut pipe: WorkerPipeline,
    maps: Vec<IdMap>,
    mut net: Box<dyn Transport>,
    done: Arc<AtomicBool>,
    counters: Arc<SoakCounters>,
) -> NetStats {
    let shards = pipe.machines.len();
    let replicas = maps[0].replicas;
    let plane = maps[0].plane;
    let mut records = Vec::new(); // workers emit no Step records
    let mut outs: Vec<Vec<Output>> = vec![Vec::new(); shards];
    for (machine, out) in pipe.machines.iter_mut().zip(&mut outs) {
        machine.on_start(out);
    }
    loop {
        // Drain to quiescence: resolving requests can make the machines
        // emit new ones (fast-forward), so alternate until nothing moves.
        // Incomplete slice sets stay pending across the recv below — their
        // missing groups only fill in when more frames arrive.
        loop {
            pipe.resolve(&mut outs);
            let mut inserted = false;
            for g in 0..shards {
                for (t, model) in drive_outputs(
                    &mut outs[g],
                    net.as_mut(),
                    maps[g],
                    &mut records,
                    &counters,
                    false,
                ) {
                    pipe.pending.entry(t).or_insert_with(|| vec![None; shards])[g] = Some(model);
                    inserted = true;
                }
            }
            if !inserted {
                break;
            }
        }
        // The worker keeps draining (and discarding) frames after it halts
        // so late server broadcasts never hit a closed endpoint.
        if done.load(Ordering::Relaxed) {
            break;
        }
        let frame = match net.recv_timeout(POLL) {
            Ok(f) => f,
            Err(RecvError::Timeout) => continue,
            Err(RecvError::Closed) => break,
        };
        // Model slices are dispatched to their shard group's machine
        // (group = sender's position in the server plane); anything else
        // is not addressed to an honest worker.
        if frame.from >= plane {
            continue;
        }
        let g = frame.from / replicas;
        if g >= shards {
            continue;
        }
        let Ok(msg) = decode(&frame.payload) else {
            continue;
        };
        pipe.machines[g].on_message(maps[g].logical(frame.from), &to_node(msg), &mut outs[g]);
    }
    net.shutdown();
    NetStats::collect(net.as_ref())
}

fn byzantine_worker_thread(
    mut machine: ByzWorkerMachine,
    map: IdMap,
    mut net: Box<dyn Transport>,
    done: Arc<AtomicBool>,
    counters: Arc<SoakCounters>,
) -> NetStats {
    let mut records = Vec::new();
    let mut out = Vec::new();
    loop {
        if done.load(Ordering::Relaxed) {
            break;
        }
        let frame = match net.recv_timeout(POLL) {
            Ok(f) => f,
            Err(RecvError::Timeout) => continue,
            Err(RecvError::Closed) => break,
        };
        let Ok(msg) = decode(&frame.payload) else {
            continue;
        };
        machine.on_message(map.logical(frame.from), &to_node(msg), &mut out);
        drive_outputs(&mut out, net.as_mut(), map, &mut records, &counters, false);
    }
    net.shutdown();
    NetStats::collect(net.as_ref())
}

/// Builds one endpoint per node on the configured interconnect. The TCP
/// mesh links only what the protocol uses: servers within one shard group
/// exchange with each other, workers talk to every server, and honest
/// workers additionally tap their gradients to Byzantine workers (the
/// omniscience channel) — honest workers never talk to each other.
fn build_endpoints(cfg: &RuntimeConfig) -> Result<Vec<Box<dyn Transport>>, GuanYuError> {
    let n = cfg.cluster.servers;
    let plane = cfg.shards.max(1) * n;
    let total = plane + cfg.cluster.workers;
    let honest_plane = plane + (cfg.cluster.workers - cfg.actual_byz_workers);
    match cfg.transport {
        TransportKind::Channel => Ok(ChannelTransport::mesh(total)
            .into_iter()
            .map(|t| Box::new(t) as Box<dyn Transport>)
            .collect()),
        TransportKind::TcpLoopback => {
            let mesh = TcpTransport::mesh(total, move |a, b| {
                let (sa, sb) = (a < plane, b < plane);
                if sa && sb {
                    a / n == b / n // same shard group exchanges models
                } else if sa || sb {
                    true // worker ↔ server
                } else {
                    // worker ↔ worker only for the omniscience taps
                    a >= honest_plane || b >= honest_plane
                }
            })
            .map_err(|e| GuanYuError::Transport(format!("tcp mesh: {e}")))?;
            Ok(mesh
                .into_iter()
                .map(|t| Box::new(t) as Box<dyn Transport>)
                .collect())
        }
    }
}

/// Runs a full cluster on OS threads until every honest server completes
/// `max_steps` updates (or the wall timeout fires).
///
/// # Errors
///
/// Returns [`GuanYuError::InvalidConfig`] for invalid configurations and
/// when the run exceeds `wall_timeout`, [`GuanYuError::Transport`] when
/// the interconnect cannot be built.
pub fn run_cluster(
    cfg: &RuntimeConfig,
    model_builder: impl Fn(&mut TensorRng) -> Sequential,
    train: Dataset,
) -> Result<ClusterReport, GuanYuError> {
    run_cluster_with(cfg, model_builder, train, RunHooks::default())
}

/// [`run_cluster`] with instrumentation [`RunHooks`]: an endpoint
/// decorator applied per node and live counters (the soak mode's churn
/// injection and monitor line are built on these).
///
/// # Errors
///
/// See [`run_cluster`].
pub fn run_cluster_with(
    cfg: &RuntimeConfig,
    model_builder: impl Fn(&mut TensorRng) -> Sequential,
    train: Dataset,
    hooks: RunHooks,
) -> Result<ClusterReport, GuanYuError> {
    if cfg.actual_byz_workers > 0 && cfg.shards > 1 {
        // The omniscience taps carry per-range gradient slices with no
        // group marker on the worker↔worker wire, so the attacker cannot
        // attribute them on a sharded plane.
        return Err(GuanYuError::InvalidConfig(
            "Byzantine workers are not supported on a sharded gradient plane".into(),
        ));
    }
    let spec = MachineSpec::new(cfg.machine_config())?;

    let mut rng = TensorRng::new(cfg.seed);
    let mut init_rng = rng.fork(0xA11);
    let theta0 = model_builder(&mut init_rng).param_vector();
    let dim = theta0.len();
    let plan = ShardPlan::even(dim, cfg.shards)
        .map_err(|e| GuanYuError::InvalidConfig(format!("shard plan: {e}")))?;
    let shards = plan.shards();
    let n = cfg.cluster.servers;
    let plane = shards * n;
    let honest_servers = n - cfg.actual_byz_servers;

    let mut endpoints = build_endpoints(cfg)?.into_iter();
    let done = Arc::new(AtomicBool::new(false));
    let train = Arc::new(train);
    let decorate = |id: usize, net: Box<dyn Transport>| match &hooks.wrap {
        Some(wrap) => wrap(id, net),
        None => net,
    };

    let start = Instant::now();
    let mut server_handles = Vec::new();
    let mut byz_server_handles = Vec::new();
    for g in 0..shards {
        let range = plan.range(g);
        // Zero-copy view of the group's slice of θ₀, materialised once per
        // group and refcount-cloned to its replicas.
        let theta_g = theta0
            .shard_view(range.clone())
            .expect("plan ranges are in bounds")
            .to_tensor();
        let map = IdMap {
            group: g,
            replicas: n,
            plane,
        };
        for r in 0..n {
            let id = g * n + r;
            let net = decorate(id, endpoints.next().expect("one endpoint per node"));
            let done = Arc::clone(&done);
            let counters = Arc::clone(&hooks.counters);
            if r < honest_servers {
                let gar = cfg
                    .server_gar
                    .build(cfg.cluster.krum_f())
                    .map_err(|e| GuanYuError::InvalidConfig(e.to_string()))?;
                let machine =
                    ServerMachine::new(Arc::clone(&spec), r, theta_g.clone(), range.start, gar);
                let count_rounds = id == 0;
                server_handles.push(std::thread::spawn(move || {
                    server_thread(machine, map, net, done, counters, count_rounds)
                }));
            } else {
                let machine = ByzServerMachine::new(Arc::clone(&spec), r, range.len());
                byz_server_handles.push(std::thread::spawn(move || {
                    byzantine_server_thread(machine, map, net, done, counters)
                }));
            }
        }
    }
    let honest_workers = cfg.cluster.workers - cfg.actual_byz_workers;
    let mut worker_handles = Vec::new();
    let maps: Vec<IdMap> = (0..shards)
        .map(|g| IdMap {
            group: g,
            replicas: n,
            plane,
        })
        .collect();
    for w in 0..cfg.cluster.workers {
        let id = plane + w;
        let net = decorate(id, endpoints.next().expect("one endpoint per node"));
        let done = Arc::clone(&done);
        let counters = Arc::clone(&hooks.counters);
        if w < honest_workers {
            let mut worker_rng = rng.fork(0xB0B + w as u64);
            let model = model_builder(&mut worker_rng);
            let batcher = Batcher::new(train.len(), cfg.batch_size, cfg.seed ^ (w as u64) << 17);
            let machines: Vec<WorkerMachine> = (0..shards)
                .map(|g| WorkerMachine::new(Arc::clone(&spec), n + w, plan.range(g).len()))
                .collect();
            let pipe = WorkerPipeline {
                machines,
                plan: plan.clone(),
                model,
                batcher,
                train: Arc::clone(&train),
                pending: HashMap::new(),
            };
            let maps = maps.clone();
            worker_handles.push(std::thread::spawn(move || {
                worker_thread(pipe, maps, net, done, counters)
            }));
        } else {
            let machine = ByzWorkerMachine::new(Arc::clone(&spec), w);
            let map = maps[0];
            worker_handles.push(std::thread::spawn(move || {
                byzantine_worker_thread(machine, map, net, done, counters)
            }));
        }
    }

    // Join servers with a wall timeout (a stalled Byzantine-heavy run must
    // not hang the caller).
    let mut raw_params = Vec::with_capacity(server_handles.len());
    let mut raw_steps = Vec::with_capacity(server_handles.len());
    let mut records = Vec::new();
    let mut dropped_sends = 0u64;
    let mut link_failures = 0u64;
    let mut pool = PoolStats::default();
    let mut timed_out = false;
    for h in server_handles {
        loop {
            if h.is_finished() {
                let (params, step, recs, stats) = h.join().expect("server thread panicked");
                raw_params.push(params);
                raw_steps.push(step);
                records.extend(recs);
                dropped_sends += stats.dropped;
                link_failures += stats.link_failures;
                fold_pool(&mut pool, stats.pool);
                break;
            }
            if timed_out || start.elapsed() > cfg.wall_timeout {
                // Flag every thread down, then keep draining the joins —
                // even a failed run must not leak node or I/O threads.
                timed_out = true;
                done.store(true, Ordering::Relaxed);
            }
            std::thread::sleep(POLL);
        }
    }
    done.store(true, Ordering::Relaxed);
    for h in byz_server_handles.into_iter().chain(worker_handles) {
        if let Ok(stats) = h.join() {
            dropped_sends += stats.dropped;
            link_failures += stats.link_failures;
            fold_pool(&mut pool, stats.pool);
        }
    }
    hooks
        .counters
        .dropped_sends
        .fetch_add(dropped_sends, Ordering::Relaxed);
    if timed_out {
        return Err(GuanYuError::InvalidConfig(format!(
            "run exceeded wall timeout of {:?}",
            cfg.wall_timeout
        )));
    }

    // Honest logical replica `r`'s full parameter vector is the
    // concatenation of its shard groups' slices (join order is g-major:
    // raw_params[g * honest_servers + r]).
    let mut final_params = Vec::with_capacity(honest_servers);
    let mut final_steps = Vec::with_capacity(honest_servers);
    for r in 0..honest_servers {
        if shards == 1 {
            final_params.push(raw_params[r].clone());
        } else {
            let mut flat = Vec::with_capacity(plan.d());
            for g in 0..shards {
                flat.extend_from_slice(raw_params[g * honest_servers + r].as_slice());
            }
            final_params.push(Tensor::from_flat(flat));
        }
        // A logical replica's groups run in lockstep; min is the honest
        // answer if one group fell behind at shutdown.
        final_steps.push(
            (0..shards)
                .map(|g| raw_steps[g * honest_servers + r])
                .min()
                .expect("at least one shard"),
        );
    }
    let updates = cfg.max_steps * honest_servers as u64;
    Ok(ClusterReport {
        final_params,
        final_steps,
        updates,
        wall_secs: start.elapsed().as_secs_f64(),
        trace: node::assemble_trace(&records),
        dropped_sends,
        link_failures,
        pool,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use data::{synthetic_cifar, SyntheticConfig};
    use nn::models;

    fn train_data() -> Dataset {
        synthetic_cifar(&SyntheticConfig {
            train: 64,
            test: 0,
            side: 8,
            ..Default::default()
        })
        .unwrap()
        .0
    }

    fn builder(rng: &mut TensorRng) -> Sequential {
        models::small_cnn(8, 2, 10, rng)
    }

    #[test]
    fn honest_cluster_completes() {
        let cfg = RuntimeConfig {
            max_steps: 3,
            ..RuntimeConfig::default_for_tests()
        };
        let report = run_cluster(&cfg, builder, train_data()).unwrap();
        assert_eq!(report.final_params.len(), 6);
        assert!(report.wall_secs > 0.0);
        assert_eq!(report.trace.len(), 3, "one digest per completed round");
    }

    #[test]
    fn servers_agree_after_run() {
        let cfg = RuntimeConfig {
            max_steps: 4,
            ..RuntimeConfig::default_for_tests()
        };
        let report = run_cluster(&cfg, builder, train_data()).unwrap();
        let diam = aggregation::properties::diameter(&report.final_params).unwrap();
        let scale = report.final_params[0].norm().max(1.0);
        assert!(diam < scale, "server diameter {diam} vs scale {scale}");
    }

    #[test]
    fn byzantine_workers_tolerated() {
        let cfg = RuntimeConfig {
            max_steps: 3,
            actual_byz_workers: 2,
            worker_attack: Some(AttackKind::Random { scale: 100.0 }),
            ..RuntimeConfig::default_for_tests()
        };
        let report = run_cluster(&cfg, builder, train_data()).unwrap();
        assert_eq!(report.final_params.len(), 6);
        for p in &report.final_params {
            assert!(p.is_finite(), "attack must not corrupt honest servers");
        }
    }

    #[test]
    fn mute_byzantine_workers_tolerated() {
        let cfg = RuntimeConfig {
            max_steps: 2,
            actual_byz_workers: 2,
            worker_attack: Some(AttackKind::Mute),
            ..RuntimeConfig::default_for_tests()
        };
        let report = run_cluster(&cfg, builder, train_data()).unwrap();
        assert_eq!(report.final_params.len(), 6);
    }

    #[test]
    fn byzantine_servers_tolerated() {
        let cfg = RuntimeConfig {
            max_steps: 3,
            actual_byz_servers: 1,
            server_attack: Some(AttackKind::Random { scale: 100.0 }),
            ..RuntimeConfig::default_for_tests()
        };
        let report = run_cluster(&cfg, builder, train_data()).unwrap();
        assert_eq!(
            report.final_params.len(),
            5,
            "only honest replicas report parameters"
        );
        for p in &report.final_params {
            assert!(p.is_finite(), "attack must not corrupt honest servers");
        }
    }

    #[test]
    fn rejects_invalid_byzantine_counts() {
        let cfg = RuntimeConfig {
            actual_byz_workers: 5, // declared 2
            worker_attack: Some(AttackKind::Mute),
            ..RuntimeConfig::default_for_tests()
        };
        assert!(run_cluster(&cfg, builder, train_data()).is_err());
    }

    #[test]
    fn rejects_byzantine_workers_on_sharded_plane() {
        let cfg = RuntimeConfig {
            shards: 2,
            actual_byz_workers: 1,
            worker_attack: Some(AttackKind::Mute),
            ..RuntimeConfig::default_for_tests()
        };
        assert!(run_cluster(&cfg, builder, train_data()).is_err());
    }

    #[test]
    fn single_server_vanilla_shape() {
        let cfg = RuntimeConfig {
            cluster: ClusterConfig::single_server(4),
            server_gar: GarKind::Average,
            max_steps: 3,
            ..RuntimeConfig::default_for_tests()
        };
        let report = run_cluster(&cfg, builder, train_data()).unwrap();
        assert_eq!(report.final_params.len(), 1);
        assert_eq!(report.trace.len(), 3);
    }

    #[test]
    fn full_quorum_run_drops_nothing() {
        // Full quorums: every server waits for every worker and every
        // peer server, so nobody exits while traffic is still in flight.
        let cfg = RuntimeConfig {
            cluster: ClusterConfig::with_quorums(3, 0, 4, 0, 3, 4).unwrap(),
            max_steps: 3,
            ..RuntimeConfig::default_for_tests()
        };
        let report = run_cluster(&cfg, builder, train_data()).unwrap();
        assert_eq!(
            report.dropped_sends, 0,
            "clean full-quorum run must not drop sends"
        );
        assert_eq!(
            report.link_failures, 0,
            "clean full-quorum run must not sever links"
        );
        assert!(
            report.pool.fresh > 0 && report.pool.high_water > 0,
            "pool counters must surface in the report: {:?}",
            report.pool
        );
    }

    #[test]
    fn sharded_run_matches_unsharded_bit_for_bit() {
        // Full quorums + a coordinate-wise GAR: sharding must change
        // nothing observable — same trace, same final parameters.
        let base = RuntimeConfig {
            cluster: ClusterConfig::with_quorums(3, 0, 4, 0, 3, 4).unwrap(),
            server_gar: GarKind::Median,
            max_steps: 3,
            ..RuntimeConfig::default_for_tests()
        };
        let flat = run_cluster(&base, builder, train_data()).unwrap();
        let sharded_cfg = RuntimeConfig {
            shards: 2,
            ..base.clone()
        };
        let sharded = run_cluster(&sharded_cfg, builder, train_data()).unwrap();
        assert_eq!(flat.trace, sharded.trace, "traces must be identical");
        assert_eq!(
            flat.trace.fingerprint(),
            sharded.trace.fingerprint(),
            "fingerprints must be identical"
        );
        assert_eq!(flat.final_params.len(), sharded.final_params.len());
        for (a, b) in flat.final_params.iter().zip(&sharded.final_params) {
            assert_eq!(
                a.as_slice(),
                b.as_slice(),
                "merged sharded parameters must be bit-identical"
            );
        }
        assert_eq!(sharded.updates, flat.updates, "logical replica updates");
        assert_eq!(sharded.dropped_sends, 0);
        assert_eq!(sharded.link_failures, 0);
    }

    #[test]
    fn planned_mode_trace_matches_across_transports() {
        // Planned quorums make the trace a pure function of seed + config:
        // the channel and TCP planes must produce identical fingerprints.
        let base = RuntimeConfig {
            max_steps: 3,
            mode: QuorumMode::Planned,
            ..RuntimeConfig::default_for_tests()
        };
        let channel = run_cluster(&base, builder, train_data()).unwrap();
        let tcp_cfg = RuntimeConfig {
            transport: TransportKind::TcpLoopback,
            ..base.clone()
        };
        let tcp = run_cluster(&tcp_cfg, builder, train_data()).unwrap();
        assert_eq!(channel.trace.len(), 3);
        assert_eq!(
            channel.trace.fingerprint(),
            tcp.trace.fingerprint(),
            "planned-mode trace must be transport-independent"
        );
    }

    #[test]
    fn rejects_zero_shards() {
        let cfg = RuntimeConfig {
            shards: 0,
            ..RuntimeConfig::default_for_tests()
        };
        let err = run_cluster(&cfg, builder, train_data()).unwrap_err();
        assert!(err.to_string().contains("shard"), "{err}");
    }

    #[test]
    fn rejects_more_shards_than_coordinates() {
        let cfg = RuntimeConfig {
            shards: 100_000_000,
            ..RuntimeConfig::default_for_tests()
        };
        let err = run_cluster(&cfg, builder, train_data()).unwrap_err();
        assert!(err.to_string().contains("shard"), "{err}");
    }
}
