//! The threaded cluster: one OS thread per node, frames over a pluggable
//! [`Transport`] — in-process channels or real TCP loopback sockets.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::soak::SoakCounters;
use std::time::{Duration, Instant};

use aggregation::{CoordinateWiseMedian, Gar, GarKind};
use byzantine::{Attack, AttackKind, AttackView};
use data::{Batcher, Dataset};
use guanyu::config::ClusterConfig;
use guanyu::trace::{tensor_digest, DigestHasher, RoundDigest, Trace};
use guanyu::GuanYuError;
use nn::{softmax_cross_entropy, LrSchedule, Sequential};
use tensor::{Tensor, TensorRng};

use crate::tcp::TcpTransport;
use crate::transport::{ChannelTransport, RecvError, Transport};
use crate::wire::{decode, WireMsg};

/// Which interconnect carries the frames (DESIGN.md §7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// In-process `mpsc` channels with `Arc`-shared broadcast buffers.
    #[default]
    Channel,
    /// Real TCP sockets over `127.0.0.1`: length-prefixed stream framing,
    /// id-carrying handshakes, batched per-peer writer threads, one
    /// poll-style reader thread per node.
    TcpLoopback,
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportKind::Channel => write!(f, "channel"),
            TransportKind::TcpLoopback => write!(f, "tcp"),
        }
    }
}

/// Configuration of a threaded run.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Cluster sizing and quorums.
    pub cluster: ClusterConfig,
    /// Updates each server performs before reporting.
    pub max_steps: u64,
    /// Learning-rate schedule.
    pub lr: LrSchedule,
    /// Server-side gradient GAR.
    pub server_gar: GarKind,
    /// Per-worker mini-batch size.
    pub batch_size: usize,
    /// Master seed.
    pub seed: u64,
    /// Actually-Byzantine workers (last worker ids).
    pub actual_byz_workers: usize,
    /// Their attack (forged from observed models).
    pub worker_attack: Option<AttackKind>,
    /// Safety net: abort the run after this much wall time.
    pub wall_timeout: Duration,
    /// The interconnect the frames travel over.
    pub transport: TransportKind,
    /// Worker fast-forward recovery: a worker whose current step can no
    /// longer fill its model quorum (frames lost to churn or crashes)
    /// jumps to the newest step that *is* fully quorate instead of
    /// stalling forever. Off by default — on a lossless run every quorum
    /// eventually fills and skipping would forfeit rounds.
    pub recovery: bool,
}

impl RuntimeConfig {
    /// Small defaults for tests and the quickstart example.
    pub fn default_for_tests() -> Self {
        RuntimeConfig {
            cluster: ClusterConfig::new(6, 1, 9, 2).expect("valid"),
            max_steps: 3,
            lr: LrSchedule::constant(0.05),
            server_gar: GarKind::MultiKrum,
            batch_size: 8,
            seed: 0,
            actual_byz_workers: 0,
            worker_attack: None,
            wall_timeout: Duration::from_secs(60),
            transport: TransportKind::Channel,
            recovery: false,
        }
    }
}

/// Wraps a node's endpoint before its thread starts (fault-injection
/// decorators like the soak's churn transport). The `usize` is the node's
/// wire id: servers first, then workers.
pub type WrapTransport = Arc<dyn Fn(usize, Box<dyn Transport>) -> Box<dyn Transport> + Send + Sync>;

/// Instrumentation hooks threaded through [`run_cluster_with`].
#[derive(Clone)]
pub struct RunHooks {
    /// Endpoint decorator, applied to every node.
    pub wrap: Option<WrapTransport>,
    /// Live counters the node threads bump while running.
    pub counters: Arc<SoakCounters>,
}

impl Default for RunHooks {
    fn default() -> Self {
        RunHooks {
            wrap: None,
            counters: Arc::new(SoakCounters::default()),
        }
    }
}

/// What a finished run reports.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Final parameter vector of each honest server, in server order.
    pub final_params: Vec<Tensor>,
    /// Total model updates across honest servers.
    pub updates: u64,
    /// Wall-clock duration of the run.
    pub wall_secs: f64,
    /// Per-round digests of the run (see [`run_trace`]): at full quorums
    /// this is a deterministic function of seed and config, identical
    /// across transports.
    pub trace: Trace,
    /// Sends that found their peer already disconnected, summed over all
    /// node endpoints. A clean full-quorum run drops nothing — the
    /// regression `tests` assert exactly zero.
    pub dropped_sends: u64,
    /// Links severed abnormally (poisoned streams, socket errors, wedged
    /// peers), summed over all node endpoints
    /// ([`Transport::link_failures`]). Always 0 on the channel plane and
    /// on clean TCP runs.
    pub link_failures: u64,
}

/// One server's per-round record, kept locally (no cross-thread
/// coordination on the hot path) and folded into a [`Trace`] after the
/// join.
#[derive(Debug, Default, Clone)]
struct ServerLog {
    rounds: Vec<ServerRound>,
}

#[derive(Debug, Clone)]
struct ServerRound {
    /// FNV-1a digest of this server's parameters after the round.
    model_digest: u64,
    /// Gradient-quorum senders, canonical (sorted) order.
    grad_quorum: Vec<usize>,
    /// Exchange-quorum senders, canonical order (empty for 1 server).
    exch_quorum: Vec<usize>,
}

/// Folds per-server round logs into one [`Trace`]: round `r`'s digest
/// covers every server's model hash (server order), every quorum
/// composition, and the number of messages folded. The format matches the
/// deterministic engines' *shape* but not their physics — compare
/// threaded traces only with threaded traces (channel vs TCP), as
/// DESIGN.md §6 prescribes for cross-engine fingerprints.
fn assemble_trace(logs: &[ServerLog]) -> Trace {
    let mut trace = Trace::new();
    let rounds = logs.iter().map(|l| l.rounds.len()).min().unwrap_or(0);
    for step in 0..rounds {
        let mut model = DigestHasher::new();
        let mut quorum = DigestHasher::new();
        let mut messages = 0u64;
        for log in logs {
            let r = &log.rounds[step];
            model.write_u64(r.model_digest);
            quorum.write_indices(&r.grad_quorum);
            quorum.write_indices(&r.exch_quorum);
            messages += (r.grad_quorum.len() + r.exch_quorum.len()) as u64;
        }
        trace.push(RoundDigest {
            step: step as u64,
            model_hash: model.finish(),
            quorum_hash: quorum.finish(),
            messages,
        });
    }
    trace
}

const POLL: Duration = Duration::from_millis(20);

/// Endpoint counters a node thread hands back after shutdown.
#[derive(Debug, Clone, Copy, Default)]
struct NetStats {
    dropped: u64,
    link_failures: u64,
}

impl NetStats {
    fn collect(net: &dyn Transport) -> NetStats {
        NetStats {
            dropped: net.dropped_sends(),
            link_failures: net.link_failures(),
        }
    }
}

/// Announces a server's model to the workers. The tensor clone is a
/// refcount bump and the frame is encoded once for all targets.
fn broadcast_model(net: &mut dyn Transport, worker_ids: &[usize], step: u64, params: &Tensor) {
    net.broadcast(
        worker_ids,
        &WireMsg::Model {
            step,
            params: params.clone(),
        },
    );
}

/// Takes the first `q` arrivals and re-orders them by sender id: the fold
/// becomes a function of the received multiset rather than of OS-thread
/// scheduling. With full quorums (`q` = sender count) the whole run is
/// bit-reproducible; with partial quorums only the membership — never the
/// fold order — remains timing-dependent.
fn canonical_quorum(mut received: Vec<(usize, Tensor)>, q: usize) -> (Vec<usize>, Vec<Tensor>) {
    received.truncate(q);
    received.sort_by_key(|&(from, _)| from);
    received.into_iter().unzip()
}

fn server_thread(
    cfg: RuntimeConfig,
    theta0: Tensor,
    mut net: Box<dyn Transport>,
    done: Arc<AtomicBool>,
    gar: Box<dyn Gar>,
    counters: Arc<SoakCounters>,
) -> (Tensor, ServerLog, NetStats) {
    use std::collections::HashMap;
    let me = net.me();
    let median = CoordinateWiseMedian::new();
    let mut params = theta0;
    let mut step = 0u64;
    let mut grads: HashMap<u64, Vec<(usize, Tensor)>> = HashMap::new();
    let mut exchanges: HashMap<u64, Vec<(usize, Tensor)>> = HashMap::new();
    let mut exchanging = false;
    let mut round_grad_quorum: Vec<usize> = Vec::new();
    let mut log = ServerLog::default();
    let servers = cfg.cluster.servers;
    let workers = cfg.cluster.workers;
    let worker_ids: Vec<usize> = (servers..servers + workers).collect();
    let peer_servers: Vec<usize> = (0..servers).filter(|&s| s != me).collect();
    broadcast_model(net.as_mut(), &worker_ids, 0, &params);
    loop {
        if done.load(Ordering::Relaxed) {
            break;
        }
        let frame = match net.recv_timeout(POLL) {
            Ok(f) => f,
            Err(RecvError::Timeout) => continue,
            Err(RecvError::Closed) => break,
        };
        let msg = match decode(&frame.payload) {
            Ok(m) => m,
            Err(_) => continue, // malformed frame: necessarily Byzantine, drop
        };
        match msg {
            WireMsg::Gradient { step: s, grad }
                if s >= step && grad.len() == params.len() && grad.is_finite() =>
            {
                grads.entry(s).or_default().push((frame.from, grad));
            }
            WireMsg::Exchange { step: s, params: p }
                if s >= step && p.len() == params.len() && p.is_finite() =>
            {
                exchanges.entry(s).or_default().push((frame.from, p));
            }
            _ => {}
        }

        // Fold gradients once the quorum for the current step is in.
        if !exchanging {
            let q = cfg.cluster.worker_quorum;
            if grads.get(&step).is_some_and(|v| v.len() >= q) {
                let (senders, received) =
                    canonical_quorum(grads.remove(&step).expect("checked"), q);
                if let Ok(agg) = gar.aggregate(&received) {
                    let lr = cfg.lr.at(step);
                    params.axpy(-lr, &agg).expect("fixed dims");
                    if servers > 1 {
                        exchanging = true;
                        round_grad_quorum = senders;
                        exchanges
                            .entry(step)
                            .or_default()
                            .push((me, params.clone()));
                        let msg = WireMsg::Exchange {
                            step,
                            params: params.clone(),
                        };
                        net.broadcast(&peer_servers, &msg);
                    } else {
                        log.rounds.push(ServerRound {
                            model_digest: tensor_digest(&params),
                            grad_quorum: senders,
                            exch_quorum: Vec::new(),
                        });
                        if me == 0 {
                            counters.rounds.fetch_add(1, Ordering::Relaxed);
                        }
                        step += 1;
                        if step >= cfg.max_steps {
                            break;
                        }
                        broadcast_model(net.as_mut(), &worker_ids, step, &params);
                    }
                }
            }
        }
        if exchanging {
            let q = cfg.cluster.server_quorum;
            if exchanges.get(&step).is_some_and(|v| v.len() >= q) {
                let (senders, received) =
                    canonical_quorum(exchanges.remove(&step).expect("checked"), q);
                if let Ok(folded) = median.aggregate(&received) {
                    params = folded;
                }
                exchanging = false;
                log.rounds.push(ServerRound {
                    model_digest: tensor_digest(&params),
                    grad_quorum: std::mem::take(&mut round_grad_quorum),
                    exch_quorum: senders,
                });
                if me == 0 {
                    counters.rounds.fetch_add(1, Ordering::Relaxed);
                }
                step += 1;
                grads.retain(|&s, _| s >= step);
                exchanges.retain(|&s, _| s >= step);
                if step >= cfg.max_steps {
                    break;
                }
                broadcast_model(net.as_mut(), &worker_ids, step, &params);
            }
        }
    }
    net.shutdown();
    let stats = NetStats::collect(net.as_ref());
    (params, log, stats)
}

fn worker_thread(
    cfg: RuntimeConfig,
    mut model: Sequential,
    mut batcher: Batcher,
    train: Arc<Dataset>,
    mut net: Box<dyn Transport>,
    done: Arc<AtomicBool>,
    counters: Arc<SoakCounters>,
) -> NetStats {
    use std::collections::HashMap;
    let median = CoordinateWiseMedian::new();
    let mut step = 0u64;
    let mut models: HashMap<u64, Vec<(usize, Tensor)>> = HashMap::new();
    let q = cfg.cluster.server_quorum;
    let server_ids: Vec<usize> = (0..cfg.cluster.servers).collect();
    'run: loop {
        if done.load(Ordering::Relaxed) {
            break;
        }
        let frame = match net.recv_timeout(POLL) {
            Ok(f) => f,
            Err(RecvError::Timeout) => continue,
            Err(RecvError::Closed) => break,
        };
        if let Ok(WireMsg::Model { step: s, params }) = decode(&frame.payload) {
            if s >= step && params.is_finite() {
                models.entry(s).or_default().push((frame.from, params));
            }
        }
        // Recovery fast-forward: only when the *current* step can no
        // longer fill (its frames were cut by churn) — a completable step
        // is never skipped, so on a lossless run this never fires.
        if cfg.recovery && models.get(&step).is_none_or(|v| v.len() < q) {
            if let Some(newest) = models
                .iter()
                .filter(|&(&s, v)| s > step && v.len() >= q)
                .map(|(&s, _)| s)
                .max()
            {
                step = newest;
                models.retain(|&s, _| s >= step);
                counters.recoveries.fetch_add(1, Ordering::Relaxed);
            }
        }
        while models.get(&step).is_some_and(|v| v.len() >= q) {
            let (_, received) = canonical_quorum(models.remove(&step).expect("checked"), q);
            let folded = match median.aggregate(&received) {
                Ok(f) => f,
                Err(_) => break 'run,
            };
            if model.set_param_vector(&folded).is_err() {
                break 'run;
            }
            model.zero_grads();
            let grad = batcher.next_batch(&train).ok().and_then(|(x, labels)| {
                let logits = model.forward(&x, true).ok()?;
                let (_, dl) = softmax_cross_entropy(&logits, &labels).ok()?;
                model.backward(&dl).ok()?;
                Some(model.grad_vector())
            });
            let grad = match grad {
                Some(g) => g,
                None => break 'run,
            };
            net.broadcast(&server_ids, &WireMsg::Gradient { step, grad });
            step += 1;
            models.retain(|&s, _| s >= step);
        }
    }
    net.shutdown();
    NetStats::collect(net.as_ref())
}

fn byzantine_worker_thread(
    cfg: RuntimeConfig,
    mut attack: Box<dyn Attack>,
    mut net: Box<dyn Transport>,
    done: Arc<AtomicBool>,
) -> NetStats {
    use std::collections::HashMap;
    let mut observed: HashMap<u64, Vec<Tensor>> = HashMap::new();
    let mut forged: HashMap<u64, bool> = HashMap::new();
    loop {
        if done.load(Ordering::Relaxed) {
            break;
        }
        let frame = match net.recv_timeout(POLL) {
            Ok(f) => f,
            Err(RecvError::Timeout) => continue,
            Err(RecvError::Closed) => break,
        };
        if let Ok(WireMsg::Model { step, params }) = decode(&frame.payload) {
            observed.entry(step).or_default().push(params);
            if forged.contains_key(&step) {
                continue;
            }
            forged.insert(step, true);
            let honest = observed[&step].clone();
            for (r, s) in (0..cfg.cluster.servers).enumerate() {
                let view = AttackView::new(&honest, step, r);
                if let Some(g) = attack.forge(&view) {
                    net.send(s, &WireMsg::Gradient { step, grad: g });
                }
            }
            observed.retain(|&s, _| s + 2 >= step);
        }
    }
    net.shutdown();
    NetStats::collect(net.as_ref())
}

/// Builds one endpoint per node on the configured interconnect. The TCP
/// mesh skips worker↔worker links — the protocol never uses them, and at
/// paper scale that halves the socket/thread count.
fn build_endpoints(cfg: &RuntimeConfig) -> Result<Vec<Box<dyn Transport>>, GuanYuError> {
    let total = cfg.cluster.servers + cfg.cluster.workers;
    let servers = cfg.cluster.servers;
    match cfg.transport {
        TransportKind::Channel => Ok(ChannelTransport::mesh(total)
            .into_iter()
            .map(|t| Box::new(t) as Box<dyn Transport>)
            .collect()),
        TransportKind::TcpLoopback => {
            let mesh = TcpTransport::mesh(total, |a, b| a < servers || b < servers)
                .map_err(|e| GuanYuError::Transport(format!("tcp mesh: {e}")))?;
            Ok(mesh
                .into_iter()
                .map(|t| Box::new(t) as Box<dyn Transport>)
                .collect())
        }
    }
}

/// Runs a full cluster on OS threads until every honest server completes
/// `max_steps` updates (or the wall timeout fires).
///
/// # Errors
///
/// Returns [`GuanYuError::InvalidConfig`] for invalid configurations and
/// when the run exceeds `wall_timeout`, [`GuanYuError::Transport`] when
/// the interconnect cannot be built.
pub fn run_cluster(
    cfg: &RuntimeConfig,
    model_builder: impl Fn(&mut TensorRng) -> Sequential,
    train: Dataset,
) -> Result<ClusterReport, GuanYuError> {
    run_cluster_with(cfg, model_builder, train, RunHooks::default())
}

/// [`run_cluster`] with instrumentation [`RunHooks`]: an endpoint
/// decorator applied per node and live counters (the soak mode's churn
/// injection and monitor line are built on these).
///
/// # Errors
///
/// See [`run_cluster`].
pub fn run_cluster_with(
    cfg: &RuntimeConfig,
    model_builder: impl Fn(&mut TensorRng) -> Sequential,
    train: Dataset,
    hooks: RunHooks,
) -> Result<ClusterReport, GuanYuError> {
    if cfg.cluster.servers > 1 {
        cfg.cluster.validate()?;
    }
    if cfg.actual_byz_workers > cfg.cluster.byz_workers {
        return Err(GuanYuError::InvalidConfig(
            "actual Byzantine workers exceed declared".into(),
        ));
    }
    if cfg.actual_byz_workers > 0 && cfg.worker_attack.is_none() {
        return Err(GuanYuError::InvalidConfig(
            "Byzantine workers configured without an attack".into(),
        ));
    }

    let mut rng = TensorRng::new(cfg.seed);
    let mut init_rng = rng.fork(0xA11);
    let theta0 = model_builder(&mut init_rng).param_vector();

    let mut endpoints = build_endpoints(cfg)?.into_iter();
    let done = Arc::new(AtomicBool::new(false));
    let train = Arc::new(train);
    let decorate = |id: usize, net: Box<dyn Transport>| match &hooks.wrap {
        Some(wrap) => wrap(id, net),
        None => net,
    };

    let start = Instant::now();
    let mut server_handles = Vec::new();
    for s in 0..cfg.cluster.servers {
        let net = decorate(s, endpoints.next().expect("one endpoint per node"));
        let gar = cfg
            .server_gar
            .build(cfg.cluster.krum_f())
            .map_err(|e| GuanYuError::InvalidConfig(e.to_string()))?;
        let cfg = cfg.clone();
        let theta0 = theta0.clone();
        let done = Arc::clone(&done);
        let counters = Arc::clone(&hooks.counters);
        server_handles.push(std::thread::spawn(move || {
            server_thread(cfg, theta0, net, done, gar, counters)
        }));
    }
    let honest_workers = cfg.cluster.workers - cfg.actual_byz_workers;
    let mut worker_handles = Vec::new();
    for w in 0..cfg.cluster.workers {
        let id = cfg.cluster.servers + w;
        let net = decorate(id, endpoints.next().expect("one endpoint per node"));
        let cfg_c = cfg.clone();
        let done = Arc::clone(&done);
        if w < honest_workers {
            let mut worker_rng = rng.fork(0xB0B + w as u64);
            let model = model_builder(&mut worker_rng);
            let batcher = Batcher::new(train.len(), cfg.batch_size, cfg.seed ^ (w as u64) << 17);
            let train = Arc::clone(&train);
            let counters = Arc::clone(&hooks.counters);
            worker_handles.push(std::thread::spawn(move || {
                worker_thread(cfg_c, model, batcher, train, net, done, counters)
            }));
        } else {
            let attack = cfg
                .worker_attack
                .expect("validated above")
                .build(cfg.seed ^ 0xEB1 ^ (w as u64) << 8);
            worker_handles.push(std::thread::spawn(move || {
                byzantine_worker_thread(cfg_c, attack, net, done)
            }));
        }
    }

    // Join servers with a wall timeout (a stalled Byzantine-heavy run must
    // not hang the caller).
    let mut final_params = Vec::with_capacity(server_handles.len());
    let mut server_logs = Vec::with_capacity(server_handles.len());
    let mut dropped_sends = 0u64;
    let mut link_failures = 0u64;
    let mut timed_out = false;
    for h in server_handles {
        loop {
            if h.is_finished() {
                let (params, log, stats) = h.join().expect("server thread panicked");
                final_params.push(params);
                server_logs.push(log);
                dropped_sends += stats.dropped;
                link_failures += stats.link_failures;
                break;
            }
            if timed_out || start.elapsed() > cfg.wall_timeout {
                // Flag every thread down, then keep draining the joins —
                // even a failed run must not leak node or I/O threads.
                timed_out = true;
                done.store(true, Ordering::Relaxed);
            }
            std::thread::sleep(POLL);
        }
    }
    done.store(true, Ordering::Relaxed);
    for h in worker_handles {
        if let Ok(stats) = h.join() {
            dropped_sends += stats.dropped;
            link_failures += stats.link_failures;
        }
    }
    hooks
        .counters
        .dropped_sends
        .fetch_add(dropped_sends, Ordering::Relaxed);
    if timed_out {
        return Err(GuanYuError::InvalidConfig(format!(
            "run exceeded wall timeout of {:?}",
            cfg.wall_timeout
        )));
    }

    let updates = cfg.max_steps * cfg.cluster.servers as u64;
    Ok(ClusterReport {
        final_params,
        updates,
        wall_secs: start.elapsed().as_secs_f64(),
        trace: assemble_trace(&server_logs),
        dropped_sends,
        link_failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use data::{synthetic_cifar, SyntheticConfig};
    use nn::models;

    fn train_data() -> Dataset {
        synthetic_cifar(&SyntheticConfig {
            train: 64,
            test: 0,
            side: 8,
            ..Default::default()
        })
        .unwrap()
        .0
    }

    fn builder(rng: &mut TensorRng) -> Sequential {
        models::small_cnn(8, 2, 10, rng)
    }

    #[test]
    fn honest_cluster_completes() {
        let cfg = RuntimeConfig {
            max_steps: 3,
            ..RuntimeConfig::default_for_tests()
        };
        let report = run_cluster(&cfg, builder, train_data()).unwrap();
        assert_eq!(report.final_params.len(), 6);
        assert!(report.wall_secs > 0.0);
        assert_eq!(report.trace.len(), 3, "one digest per completed round");
    }

    #[test]
    fn servers_agree_after_run() {
        let cfg = RuntimeConfig {
            max_steps: 4,
            ..RuntimeConfig::default_for_tests()
        };
        let report = run_cluster(&cfg, builder, train_data()).unwrap();
        let diam = aggregation::properties::diameter(&report.final_params).unwrap();
        let scale = report.final_params[0].norm().max(1.0);
        assert!(diam < scale, "server diameter {diam} vs scale {scale}");
    }

    #[test]
    fn byzantine_workers_tolerated() {
        let cfg = RuntimeConfig {
            max_steps: 3,
            actual_byz_workers: 2,
            worker_attack: Some(AttackKind::Random { scale: 100.0 }),
            ..RuntimeConfig::default_for_tests()
        };
        let report = run_cluster(&cfg, builder, train_data()).unwrap();
        assert_eq!(report.final_params.len(), 6);
        for p in &report.final_params {
            assert!(p.is_finite(), "attack must not corrupt honest servers");
        }
    }

    #[test]
    fn mute_byzantine_workers_tolerated() {
        let cfg = RuntimeConfig {
            max_steps: 2,
            actual_byz_workers: 2,
            worker_attack: Some(AttackKind::Mute),
            ..RuntimeConfig::default_for_tests()
        };
        let report = run_cluster(&cfg, builder, train_data()).unwrap();
        assert_eq!(report.final_params.len(), 6);
    }

    #[test]
    fn rejects_invalid_byzantine_counts() {
        let cfg = RuntimeConfig {
            actual_byz_workers: 5, // declared 2
            worker_attack: Some(AttackKind::Mute),
            ..RuntimeConfig::default_for_tests()
        };
        assert!(run_cluster(&cfg, builder, train_data()).is_err());
    }

    #[test]
    fn single_server_vanilla_shape() {
        let cfg = RuntimeConfig {
            cluster: ClusterConfig::single_server(4),
            server_gar: GarKind::Average,
            max_steps: 3,
            ..RuntimeConfig::default_for_tests()
        };
        let report = run_cluster(&cfg, builder, train_data()).unwrap();
        assert_eq!(report.final_params.len(), 1);
        assert_eq!(report.trace.len(), 3);
    }

    #[test]
    fn full_quorum_run_drops_nothing() {
        // Full quorums: every server waits for every worker and every
        // peer server, so nobody exits while traffic is still in flight.
        let cfg = RuntimeConfig {
            cluster: ClusterConfig::with_quorums(3, 0, 4, 0, 3, 4).unwrap(),
            max_steps: 3,
            ..RuntimeConfig::default_for_tests()
        };
        let report = run_cluster(&cfg, builder, train_data()).unwrap();
        assert_eq!(
            report.dropped_sends, 0,
            "clean full-quorum run must not drop sends"
        );
        assert_eq!(
            report.link_failures, 0,
            "clean full-quorum run must not sever links"
        );
    }
}
