//! Frame-buffer recycling for the wire hot path.
//!
//! Every protocol message crosses the transport as an encoded frame, and
//! at paper scale (d ≈ 1.75M) each frame is ~7 MiB — allocating (and
//! page-faulting) one per message dominates the serialization cost the
//! paper's §5.3 measures. [`BufPool`] is a small mutexed free-list of
//! `Vec<u8>` scratch buffers: `encode` borrows one, fills it, publishes
//! the bytes as an `Arc<[u8]>`, and returns the scratch — so steady-state
//! rounds re-use the same few warmed buffers instead of hitting the
//! allocator per message.
//!
//! One pool is shared per mesh (both the channel and the TCP plane build
//! one in `mesh()`), sized deliberately small: the number of concurrently
//! live scratch buffers is bounded by the number of node threads encoding
//! at once, and retaining more would only pin memory.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::Serialize;

/// Retained free-list length. Concurrent encodes per mesh are bounded by
/// the node count actually sending at the same instant, which on the
/// protocol's phase structure is far below this.
const MAX_POOLED: usize = 8;

/// A mutexed free-list of reusable byte buffers.
///
/// The lock is held only for a `Vec` push/pop — nanoseconds against the
/// milliseconds a paper-scale frame spends being encoded — so contention
/// is not a concern even with every node thread sharing one pool.
#[derive(Debug, Default)]
pub struct BufPool {
    free: Mutex<Vec<Vec<u8>>>,
    recycled: AtomicU64,
    fresh: AtomicU64,
    outstanding: AtomicU64,
    high_water: AtomicU64,
}

/// A snapshot of a pool's counters, embedded in `ClusterReport` /
/// `SoakReport` JSON so the pooled-frame plane is observable in soak runs
/// and sweeps, not just unit tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct PoolStats {
    /// `get`s that had to allocate a fresh buffer.
    pub fresh: u64,
    /// `get`s served from the free list.
    pub recycled: u64,
    /// Most buffers simultaneously checked out over the pool's lifetime —
    /// the true concurrency of the encode plane (and the upper bound on
    /// memory the pool can ever pin beyond its retention cap).
    pub high_water: u64,
}

impl BufPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Borrows a cleared buffer: a recycled one when available, a fresh
    /// allocation otherwise. Return it with [`put`](Self::put) when done.
    pub fn get(&self) -> Vec<u8> {
        let buf = match self.free.lock().expect("pool lock").pop() {
            Some(buf) => {
                self.recycled.fetch_add(1, Ordering::Relaxed);
                buf
            }
            None => {
                self.fresh.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            }
        };
        let now = self.outstanding.fetch_add(1, Ordering::Relaxed) + 1;
        self.high_water.fetch_max(now, Ordering::Relaxed);
        buf
    }

    /// Returns a buffer to the free list (cleared, capacity kept). Beyond
    /// the retention cap the buffer is simply dropped — the pool bounds
    /// pinned memory, it does not grow with burst size.
    pub fn put(&self, mut buf: Vec<u8>) {
        // Saturating: `put` also accepts buffers the pool never handed out
        // (tests seed capacity this way), which must not wrap the gauge.
        let _ = self
            .outstanding
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
        buf.clear();
        let mut free = self.free.lock().expect("pool lock");
        if free.len() < MAX_POOLED {
            free.push(buf);
        }
    }

    /// Buffers currently parked on the free list.
    pub fn pooled(&self) -> usize {
        self.free.lock().expect("pool lock").len()
    }

    /// `get`s served from the free list so far.
    pub fn recycled(&self) -> u64 {
        self.recycled.load(Ordering::Relaxed)
    }

    /// `get`s that had to allocate a fresh buffer.
    pub fn fresh(&self) -> u64 {
        self.fresh.load(Ordering::Relaxed)
    }

    /// Most buffers simultaneously checked out so far.
    pub fn high_water(&self) -> u64 {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Snapshot of all counters for report JSON.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            fresh: self.fresh(),
            recycled: self.recycled(),
            high_water: self.high_water(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_reuses_capacity() {
        let pool = BufPool::new();
        let mut buf = pool.get();
        buf.extend_from_slice(&[7u8; 4096]);
        let cap = buf.capacity();
        pool.put(buf);
        let again = pool.get();
        assert_eq!(again.capacity(), cap, "recycled buffer keeps its capacity");
        assert!(again.is_empty(), "recycled buffer comes back cleared");
        assert_eq!(pool.recycled(), 1);
        assert_eq!(pool.fresh(), 1);
    }

    #[test]
    fn retention_is_capped() {
        let pool = BufPool::new();
        for _ in 0..(MAX_POOLED + 5) {
            pool.put(Vec::with_capacity(16));
        }
        assert_eq!(pool.pooled(), MAX_POOLED);
    }

    #[test]
    fn empty_pool_hands_out_fresh_buffers() {
        let pool = BufPool::new();
        assert_eq!(pool.pooled(), 0);
        let buf = pool.get();
        assert!(buf.is_empty());
        assert_eq!(pool.fresh(), 1);
        assert_eq!(pool.recycled(), 0);
    }

    #[test]
    fn high_water_tracks_peak_concurrent_checkouts() {
        let pool = BufPool::new();
        let a = pool.get();
        let b = pool.get();
        let c = pool.get();
        pool.put(a);
        pool.put(b);
        let _d = pool.get(); // back to 2 outstanding; peak stays 3
        assert_eq!(pool.high_water(), 3);
        pool.put(c);
        let stats = pool.stats();
        assert_eq!(stats.high_water, 3);
        assert_eq!(stats.fresh, 3);
        assert_eq!(stats.recycled, 1);
    }

    #[test]
    fn foreign_puts_never_wrap_the_gauge() {
        let pool = BufPool::new();
        pool.put(Vec::with_capacity(8)); // never checked out
        let _a = pool.get();
        assert_eq!(pool.high_water(), 1, "gauge must not have wrapped");
    }

    #[test]
    fn stats_serialise() {
        let pool = BufPool::new();
        pool.put(pool.get());
        let json = serde_json::to_string(&pool.stats()).unwrap();
        assert!(json.contains("\"high_water\":1"), "unexpected json: {json}");
    }
}
