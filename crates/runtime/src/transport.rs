//! The transport abstraction: how frames move between node threads.
//!
//! The protocol loops in `cluster.rs` are transport-agnostic — each node
//! thread owns one [`Transport`] endpoint and only ever calls
//! [`send`](Transport::send) / [`broadcast`](Transport::broadcast) /
//! [`recv_timeout`](Transport::recv_timeout) /
//! [`shutdown`](Transport::shutdown). Two implementations exist
//! (DESIGN.md §7):
//!
//! * [`ChannelTransport`] — in-process `mpsc` channels, the original
//!   engine: zero-copy fan-out (a broadcast encodes once and every
//!   receiver holds the same `Arc`ed buffer), encode scratch recycled
//!   through a mesh-shared [`BufPool`];
//! * [`TcpTransport`](crate::tcp::TcpTransport) — real loopback sockets
//!   with length-prefixed stream framing, batched per-peer writer threads,
//!   a single poll-style reader thread per node and an id-carrying
//!   handshake.
//!
//! Both carry the *same bytes* ([`wire`](crate::wire) codec), and at full
//! quorums both produce bit-identical runs — the cross-transport
//! consistency contract `tests/engines_consistency.rs` pins.
//!
//! Failed sends are never silent: a send to a disconnected peer (one that
//! already shut down) is *counted* via [`Transport::dropped_sends`], and a
//! link torn down abnormally (poisoned stream, socket error, wedged peer)
//! is counted via [`Transport::link_failures`] — the cluster surfaces both
//! totals in its report so tests can assert that clean full-quorum runs
//! drop and sever nothing.

use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Duration;

use crate::pool::{BufPool, PoolStats};
use crate::wire::{encode_range_shared, encode_shared, WireMsg};

/// One received frame: the transport-level sender identity plus the raw
/// frame bytes (decoded by the node thread, where malformed input is
/// treated as Byzantine and dropped).
#[derive(Debug, Clone)]
pub struct Incoming {
    /// Transport-level peer id of the sender (channel index, or the id the
    /// TCP handshake carried). Receivers use it to fold quorums in
    /// canonical sender order.
    pub from: usize,
    /// Raw frame bytes; `Arc<[u8]>` so a broadcast shares one allocation
    /// (no `Vec` indirection between the refcount and the bytes).
    pub payload: Arc<[u8]>,
}

/// Why a receive returned nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// No frame arrived within the timeout; poll again.
    Timeout,
    /// The transport is closed — no frame can ever arrive again.
    Closed,
}

/// A node's endpoint on some interconnect.
///
/// Send operations take `&mut self` — each endpoint belongs to exactly one
/// node thread, and mutability lets implementations keep per-endpoint
/// counters without atomics on the hot path.
pub trait Transport: Send {
    /// This endpoint's node id.
    fn me(&self) -> usize;

    /// Encodes and sends one message to `to`. A disconnected peer is not
    /// an error (peers shut down independently) but the drop is counted.
    fn send(&mut self, to: usize, msg: &WireMsg);

    /// Encodes `msg` **once** and delivers the same bytes to every target.
    fn broadcast(&mut self, targets: &[usize], msg: &WireMsg);

    /// Broadcasts only coordinates `range` of the message's vector — the
    /// scatter primitive of the sharded gradient plane (DESIGN.md §9): one
    /// frame per shard *group*, shared by every group member.
    ///
    /// The default implementation materialises the slice and falls back to
    /// [`broadcast`](Transport::broadcast), which keeps decorators correct
    /// by construction (their filtering and counting still apply); the
    /// concrete engines override it to encode straight off the original
    /// tensor's subslice through the pooled zero-copy path.
    fn broadcast_range(&mut self, targets: &[usize], msg: &WireMsg, range: std::ops::Range<usize>) {
        self.broadcast(targets, &msg.slice(range));
    }

    /// Snapshot of the mesh-shared encode pool's counters, for report
    /// JSON. Transports without pooled buffers report zeros.
    fn pool_stats(&self) -> PoolStats {
        PoolStats::default()
    }

    /// Blocks up to `timeout` for the next frame.
    ///
    /// # Errors
    ///
    /// [`RecvError::Timeout`] when nothing arrived in time,
    /// [`RecvError::Closed`] when the transport can deliver nothing more.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Incoming, RecvError>;

    /// Sends that could not be delivered so far.
    fn dropped_sends(&self) -> u64;

    /// Links this endpoint severed *abnormally* so far: poisoned streams,
    /// socket errors, peers dead mid-frame or wedged past the write-stall
    /// deadline. A peer departing cleanly (EOF between frames) is not a
    /// failure. Transports with no link concept report 0.
    fn link_failures(&self) -> u64 {
        0
    }

    /// Tears the endpoint down: closes connections and joins every I/O
    /// thread the endpoint spawned. Idempotent; called by the node thread
    /// on exit so no run ever leaks a thread.
    fn shutdown(&mut self);
}

/// Frame moving through the channel mesh.
struct Frame {
    from: usize,
    payload: Arc<[u8]>,
}

/// In-process transport: one `mpsc` channel per node, shared sender set.
///
/// This is the PR-3 "zero-copy gradient plane" engine behind the trait: a
/// broadcast encodes one frame and every receiver's mailbox holds the same
/// `Arc<[u8]>`. Encode scratch buffers are recycled through one
/// [`BufPool`] shared by every endpoint of the mesh.
pub struct ChannelTransport {
    me: usize,
    senders: Arc<Vec<Sender<Frame>>>,
    rx: Receiver<Frame>,
    pool: Arc<BufPool>,
    dropped: u64,
}

impl ChannelTransport {
    /// Builds a fully-connected mesh of `n` endpoints (node `i` owns the
    /// `i`-th element).
    pub fn mesh(n: usize) -> Vec<ChannelTransport> {
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel::<Frame>();
            senders.push(tx);
            receivers.push(rx);
        }
        let senders = Arc::new(senders);
        let pool = Arc::new(BufPool::new());
        receivers
            .into_iter()
            .enumerate()
            .map(|(me, rx)| ChannelTransport {
                me,
                senders: Arc::clone(&senders),
                rx,
                pool: Arc::clone(&pool),
                dropped: 0,
            })
            .collect()
    }

    fn send_frame(&mut self, to: usize, payload: Arc<[u8]>) {
        // A disconnected peer already shut down; count the drop so clean
        // runs can assert none happened.
        if self.senders[to]
            .send(Frame {
                from: self.me,
                payload,
            })
            .is_err()
        {
            self.dropped += 1;
        }
    }
}

impl Transport for ChannelTransport {
    fn me(&self) -> usize {
        self.me
    }

    fn send(&mut self, to: usize, msg: &WireMsg) {
        let payload = encode_shared(msg, &self.pool);
        self.send_frame(to, payload);
    }

    fn broadcast(&mut self, targets: &[usize], msg: &WireMsg) {
        let payload = encode_shared(msg, &self.pool);
        for &to in targets {
            self.send_frame(to, Arc::clone(&payload));
        }
    }

    fn broadcast_range(&mut self, targets: &[usize], msg: &WireMsg, range: std::ops::Range<usize>) {
        // Zero-copy scatter: the slice is encoded straight off the original
        // tensor buffer into pooled scratch; no per-shard tensor exists.
        let payload = encode_range_shared(msg, range, &self.pool);
        for &to in targets {
            self.send_frame(to, Arc::clone(&payload));
        }
    }

    fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Incoming, RecvError> {
        match self.rx.recv_timeout(timeout) {
            Ok(f) => Ok(Incoming {
                from: f.from,
                payload: f.payload,
            }),
            Err(RecvTimeoutError::Timeout) => Err(RecvError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(RecvError::Closed),
        }
    }

    fn dropped_sends(&self) -> u64 {
        self.dropped
    }

    fn shutdown(&mut self) {
        // Channels tear themselves down on drop; nothing to join.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::decode;
    use tensor::Tensor;

    fn msg(step: u64) -> WireMsg {
        WireMsg::Gradient {
            step,
            grad: Tensor::from_flat(vec![1.0, 2.0]),
        }
    }

    #[test]
    fn channel_mesh_routes_by_id() {
        let mut mesh = ChannelTransport::mesh(3);
        let mut n2 = mesh.pop().unwrap();
        let mut n1 = mesh.pop().unwrap();
        let mut n0 = mesh.pop().unwrap();
        n0.send(2, &msg(7));
        n1.send(2, &msg(8));
        let a = n2.recv_timeout(Duration::from_secs(1)).unwrap();
        let b = n2.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!((a.from, b.from), (0, 1));
        assert_eq!(decode(&a.payload).unwrap(), msg(7));
        assert_eq!(n0.link_failures(), 0, "channels never sever");
        assert!(matches!(
            n0.recv_timeout(Duration::from_millis(5)),
            Err(RecvError::Timeout)
        ));
    }

    #[test]
    fn channel_broadcast_shares_one_buffer() {
        let mut mesh = ChannelTransport::mesh(3);
        let mut n2 = mesh.pop().unwrap();
        let mut n1 = mesh.pop().unwrap();
        let mut n0 = mesh.pop().unwrap();
        n0.broadcast(&[1, 2], &msg(1));
        let a = n1.recv_timeout(Duration::from_secs(1)).unwrap();
        let b = n2.recv_timeout(Duration::from_secs(1)).unwrap();
        assert!(Arc::ptr_eq(&a.payload, &b.payload), "fan-out must share");
    }

    #[test]
    fn channel_sends_recycle_encode_scratch() {
        let mut mesh = ChannelTransport::mesh(2);
        let mut n1 = mesh.pop().unwrap();
        let mut n0 = mesh.pop().unwrap();
        for step in 0..5 {
            n0.send(1, &msg(step));
            n1.recv_timeout(Duration::from_secs(1)).unwrap();
        }
        assert_eq!(n0.pool.fresh(), 1, "one warm-up allocation");
        assert_eq!(n0.pool.recycled(), 4, "steady state reuses the scratch");
    }

    #[test]
    fn channel_broadcast_range_shares_one_sliced_frame() {
        let mut mesh = ChannelTransport::mesh(3);
        let mut n2 = mesh.pop().unwrap();
        let mut n1 = mesh.pop().unwrap();
        let mut n0 = mesh.pop().unwrap();
        let full = WireMsg::Gradient {
            step: 3,
            grad: Tensor::from_flat(vec![0.0, 1.0, 2.0, 3.0, 4.0]),
        };
        n0.broadcast_range(&[1, 2], &full, 1..4);
        let a = n1.recv_timeout(Duration::from_secs(1)).unwrap();
        let b = n2.recv_timeout(Duration::from_secs(1)).unwrap();
        assert!(Arc::ptr_eq(&a.payload, &b.payload), "scatter must share");
        let decoded = decode(&a.payload).unwrap();
        assert_eq!(decoded.step(), 3);
        assert_eq!(decoded.vector().as_slice(), &[1.0, 2.0, 3.0]);
        assert_eq!(n0.pool_stats().fresh, 1);
    }

    #[test]
    fn disconnected_peer_counts_a_drop() {
        let mut mesh = ChannelTransport::mesh(2);
        let n1 = mesh.pop().unwrap();
        let mut n0 = mesh.pop().unwrap();
        drop(n1); // peer shut down
        assert_eq!(n0.dropped_sends(), 0);
        n0.send(1, &msg(0));
        n0.broadcast(&[1], &msg(1));
        assert_eq!(n0.dropped_sends(), 2);
    }
}
