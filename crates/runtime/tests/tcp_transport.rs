//! TCP loopback engine: end-to-end cluster runs over real sockets.
//!
//! These tests cross the kernel's TCP stack, so CI runs them
//! single-threaded (`--test-threads=1`); they are written to also pass
//! under the default parallel harness (the thread-leak check tolerates
//! unrelated harness threads).

use std::time::Duration;

use byzantine::AttackKind;
use data::{synthetic_cifar, Dataset, SyntheticConfig};
use guanyu::config::ClusterConfig;
use guanyu_runtime::{run_cluster, ClusterReport, RuntimeConfig, TransportKind};
use nn::{models, Sequential};
use tensor::TensorRng;

fn train_data(seed: u64) -> Dataset {
    synthetic_cifar(&SyntheticConfig {
        train: 64,
        test: 0,
        side: 8,
        seed,
        ..Default::default()
    })
    .unwrap()
    .0
}

fn builder(rng: &mut TensorRng) -> Sequential {
    models::small_cnn(8, 2, 10, rng)
}

/// Small full-quorum cluster: 3 servers, 4 workers, every quorum waits
/// for every sender — the bit-reproducible regime.
fn full_quorum_cfg(transport: TransportKind) -> RuntimeConfig {
    RuntimeConfig {
        cluster: ClusterConfig::with_quorums(3, 0, 4, 0, 3, 4).unwrap(),
        max_steps: 3,
        batch_size: 8,
        seed: 42,
        wall_timeout: Duration::from_secs(120),
        transport,
        ..RuntimeConfig::default_for_tests()
    }
}

fn run(transport: TransportKind) -> ClusterReport {
    run_cluster(&full_quorum_cfg(transport), builder, train_data(42)).unwrap()
}

/// Threads of this process, from `/proc` (Linux; `None` elsewhere).
fn live_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("Threads:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

#[test]
fn tcp_cluster_completes_and_drops_nothing() {
    let report = run(TransportKind::TcpLoopback);
    assert_eq!(report.final_params.len(), 3);
    assert_eq!(report.trace.len(), 3, "one digest per round");
    assert_eq!(
        report.dropped_sends, 0,
        "clean full-quorum TCP run must not drop sends"
    );
    assert_eq!(
        report.link_failures, 0,
        "clean full-quorum TCP run must not sever links"
    );
}

#[test]
fn tcp_run_is_bit_identical_to_channel_run() {
    let tcp = run(TransportKind::TcpLoopback);
    let chan = run(TransportKind::Channel);
    assert_eq!(
        tcp.trace, chan.trace,
        "per-round digests must match across transports"
    );
    assert_eq!(tcp.trace.fingerprint(), chan.trace.fingerprint());
    for (i, (a, b)) in tcp.final_params.iter().zip(&chan.final_params).enumerate() {
        assert_eq!(
            a.as_slice(),
            b.as_slice(),
            "server {i}: TCP and channel transports diverged"
        );
    }
}

#[test]
fn tcp_tolerates_byzantine_workers() {
    // Partial quorums + forged gradients: the adversarial path over real
    // sockets. (Not bit-reproducible — just safety.)
    let cfg = RuntimeConfig {
        cluster: ClusterConfig::new(6, 1, 9, 2).unwrap(),
        max_steps: 3,
        batch_size: 8,
        seed: 7,
        actual_byz_workers: 2,
        worker_attack: Some(AttackKind::Random { scale: 100.0 }),
        wall_timeout: Duration::from_secs(120),
        transport: TransportKind::TcpLoopback,
        ..RuntimeConfig::default_for_tests()
    };
    let report = run_cluster(&cfg, builder, train_data(7)).unwrap();
    assert_eq!(report.final_params.len(), 6);
    for p in &report.final_params {
        assert!(p.is_finite(), "attack must not corrupt honest servers");
    }
}

/// Repeated runs: fingerprints never drift, and every spawned thread —
/// node, reader, writer — is joined by the time `run_cluster` returns.
#[test]
fn tcp_shutdown_stress_no_leaks_and_stable_fingerprints() {
    // Baseline *after* a warm-up run, so one-time allocations (harness
    // threads, lazily spawned helpers) do not read as leaks.
    let first = run(TransportKind::TcpLoopback).trace.fingerprint();
    let baseline = live_threads();
    for round in 0..4 {
        let report = run(TransportKind::TcpLoopback);
        assert_eq!(
            report.trace.fingerprint(),
            first,
            "round {round}: fingerprint drifted across repeated runs"
        );
        assert_eq!(report.dropped_sends, 0, "round {round}: dropped sends");
    }
    if let Some(base) = baseline {
        // Every node thread is joined before run_cluster returns, and each
        // node joins its own I/O threads on shutdown — so the count must
        // return to baseline. Poll briefly: the harness itself may be
        // winding concurrent tests up or down.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut now = live_threads().unwrap_or(usize::MAX);
        while now > base && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(50));
            now = live_threads().unwrap_or(usize::MAX);
        }
        assert!(
            now <= base,
            "leaked threads: {now} live after runs vs baseline {base}"
        );
    }
}

/// I/O thread count per node is O(links out) + 1: a 4-node full mesh
/// spawns 12 writer threads (one per directed link) plus 4 reader-plane
/// threads (one per node) = 16 — not the 12 + 12 the per-link reader
/// design cost. The mesh-construction dialler thread is joined before
/// `mesh` returns, so it never shows up here.
#[test]
fn tcp_mesh_thread_count_is_out_links_plus_one_reader() {
    use guanyu_runtime::{TcpTransport, Transport};
    if live_threads().is_none() {
        return; // no /proc: nothing to measure on this platform
    }
    const EXPECTED: usize = 4 * 3 + 4; // writers + reader planes
    let mut delta = usize::MAX;
    // Retry: under a parallel test harness unrelated tests churn threads,
    // so a single exact sample can be perturbed. (CI runs this suite with
    // --test-threads=1, where the first sample is already exact.)
    for _ in 0..3 {
        let base = live_threads().unwrap();
        let mut mesh = TcpTransport::mesh(4, |_, _| true).unwrap();
        delta = live_threads().unwrap().saturating_sub(base);
        for t in &mut mesh {
            t.shutdown();
        }
        drop(mesh);
        if delta == EXPECTED {
            return;
        }
    }
    assert!(
        delta <= EXPECTED,
        "4-node full mesh spawned {delta} I/O threads; \
         bound is 12 writers + 4 reader planes = {EXPECTED}"
    );
}

/// The wall-timeout abort path must also tear everything down: a run too
/// long for its deadline errors out, and no node or I/O thread survives.
#[test]
fn tcp_wall_timeout_aborts_without_leaking() {
    let baseline = live_threads();
    let cfg = RuntimeConfig {
        cluster: ClusterConfig::new(6, 1, 9, 2).unwrap(),
        // Far more steps than a few milliseconds allow: the timeout fires
        // mid-run, while traffic is genuinely in flight.
        max_steps: 100_000,
        batch_size: 8,
        seed: 3,
        wall_timeout: Duration::from_millis(200),
        transport: TransportKind::TcpLoopback,
        ..RuntimeConfig::default_for_tests()
    };
    let err = run_cluster(&cfg, builder, train_data(3)).unwrap_err();
    assert!(
        err.to_string().contains("wall timeout"),
        "expected a wall-timeout error, got: {err}"
    );
    if let Some(base) = baseline {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut now = live_threads().unwrap_or(usize::MAX);
        while now > base && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(50));
            now = live_threads().unwrap_or(usize::MAX);
        }
        assert!(
            now <= base,
            "timeout path leaked threads: {now} vs baseline {base}"
        );
    }
}
