//! Fuzz-style property tests for the wire codec: a Byzantine peer controls
//! every byte on the channel, so `decode` must be total — any input yields
//! `Ok` or a structured error, never a panic, and valid frames round-trip.

use guanyu_runtime::{decode, encode, WireMsg};
use proptest::prelude::*;
use tensor::Tensor;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// decode() never panics on arbitrary bytes.
    #[test]
    fn decode_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode(&bytes); // must not panic
    }

    /// Every encodable message round-trips exactly.
    #[test]
    fn roundtrip(
        tag in 0u8..3,
        step in any::<u64>(),
        payload in proptest::collection::vec(-1e6f32..1e6, 0..64),
    ) {
        let t = Tensor::from_flat(payload);
        let msg = match tag {
            0 => WireMsg::Model { step, params: t },
            1 => WireMsg::Gradient { step, grad: t },
            _ => WireMsg::Exchange { step, params: t },
        };
        let back = decode(&encode(&msg)).unwrap();
        prop_assert_eq!(back, msg);
    }

    /// Truncating a valid frame anywhere yields an error, not garbage.
    #[test]
    fn truncation_detected(
        payload in proptest::collection::vec(-10.0f32..10.0, 1..16),
        cut in 0usize..12,
    ) {
        let msg = WireMsg::Gradient { step: 7, grad: Tensor::from_flat(payload) };
        let frame = encode(&msg);
        let cut = cut.min(frame.len().saturating_sub(1));
        prop_assert!(decode(&frame[..cut]).is_err());
    }

    /// Bit-flipping the tag byte of a valid frame either still decodes to a
    /// (different) valid message type or errors — never panics.
    #[test]
    fn tag_corruption_handled(
        payload in proptest::collection::vec(-10.0f32..10.0, 1..8),
        new_tag in any::<u8>(),
    ) {
        let msg = WireMsg::Model { step: 1, params: Tensor::from_flat(payload) };
        let mut frame = encode(&msg);
        frame[0] = new_tag;
        let _ = decode(&frame); // totality is the property
    }
}
