//! Fuzz-style property tests for the wire codec: a Byzantine peer controls
//! every byte on the channel, so `decode` must be total — any input yields
//! `Ok` or a structured error, never a panic, and valid frames round-trip.
//! The same contract extends to the stream layer (`StreamDecoder`): the
//! TCP transport feeds it raw socket bytes at arbitrary granularity, and
//! it must re-assemble honestly framed streams exactly while rejecting
//! over-cap prefixes before buffering a single payload byte.

use std::io::{IoSlice, Write};
use std::sync::Arc;

use guanyu_runtime::{
    decode, encode, prefix_frame, write_frames, StreamDecoder, WireMsg, MAX_FRAME_BYTES,
};
use proptest::prelude::*;
use tensor::Tensor;

fn build_msg(tag: u8, step: u64, payload: Vec<f32>) -> WireMsg {
    let t = Tensor::from_flat(payload);
    match tag {
        0 => WireMsg::Model { step, params: t },
        1 => WireMsg::Gradient { step, grad: t },
        _ => WireMsg::Exchange { step, params: t },
    }
}

/// A `Write` sink with adversarial partial-write behaviour: each call
/// accepts at most the next value of a cycled limit schedule, so a batched
/// write may stop anywhere — mid-prefix, mid-frame, one byte at a time —
/// exactly like a congested socket. With `vectored` off it additionally
/// degrades `write_vectored` to the std default (first non-empty slice
/// only), covering writers with no true gather support.
struct ChoppyWriter {
    out: Vec<u8>,
    limits: Vec<usize>,
    calls: usize,
    vectored: bool,
}

impl ChoppyWriter {
    fn next_limit(&mut self) -> usize {
        let l = self.limits[self.calls % self.limits.len()];
        self.calls += 1;
        l.max(1) // a sink must make *some* progress or WriteZero is correct
    }
}

impl Write for ChoppyWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = buf.len().min(self.next_limit());
        self.out.extend_from_slice(&buf[..n]);
        Ok(n)
    }

    fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> std::io::Result<usize> {
        if !self.vectored {
            // std's default: only the first non-empty buffer.
            let first = bufs.iter().find(|b| !b.is_empty()).map_or(&[][..], |b| b);
            return self.write(first);
        }
        let mut budget = self.next_limit();
        let mut written = 0;
        for b in bufs {
            let n = b.len().min(budget);
            self.out.extend_from_slice(&b[..n]);
            written += n;
            budget -= n;
            if budget == 0 {
                break;
            }
        }
        Ok(written)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// decode() never panics on arbitrary bytes.
    #[test]
    fn decode_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode(&bytes); // must not panic
    }

    /// Every encodable message round-trips exactly.
    #[test]
    fn roundtrip(
        tag in 0u8..3,
        step in any::<u64>(),
        payload in proptest::collection::vec(-1e6f32..1e6, 0..64),
    ) {
        let msg = build_msg(tag, step, payload);
        let back = decode(&encode(&msg)).unwrap();
        prop_assert_eq!(back, msg);
    }

    /// Truncating a valid frame anywhere yields an error, not garbage.
    #[test]
    fn truncation_detected(
        payload in proptest::collection::vec(-10.0f32..10.0, 1..16),
        cut in 0usize..12,
    ) {
        let msg = WireMsg::Gradient { step: 7, grad: Tensor::from_flat(payload) };
        let frame = encode(&msg);
        let cut = cut.min(frame.len().saturating_sub(1));
        prop_assert!(decode(&frame[..cut]).is_err());
    }

    /// Bit-flipping the tag byte of a valid frame either still decodes to a
    /// (different) valid message type or errors — never panics.
    #[test]
    fn tag_corruption_handled(
        payload in proptest::collection::vec(-10.0f32..10.0, 1..8),
        new_tag in any::<u8>(),
    ) {
        let msg = WireMsg::Model { step: 1, params: Tensor::from_flat(payload) };
        let mut frame = encode(&msg);
        frame[0] = new_tag;
        let _ = decode(&frame); // totality is the property
    }

    /// Stream re-assembly is exact regardless of chunk boundaries: a
    /// sequence of messages, prefixed and concatenated, then delivered in
    /// arbitrary-size chunks, decodes back to exactly that sequence.
    #[test]
    fn stream_reassembly_is_chunking_invariant(
        specs in proptest::collection::vec(
            (0u8..3, any::<u64>(), proptest::collection::vec(-1e3f32..1e3, 0..24)),
            0..8,
        ),
        chunk_size in 1usize..64,
    ) {
        let msgs: Vec<WireMsg> = specs
            .into_iter()
            .map(|(tag, step, payload)| build_msg(tag, step, payload))
            .collect();
        let mut stream = Vec::new();
        let mut prefixed = Vec::new();
        for m in &msgs {
            prefix_frame(&encode(m), &mut prefixed);
            stream.extend_from_slice(&prefixed);
        }
        let mut dec = StreamDecoder::new();
        let mut out = Vec::new();
        for chunk in stream.chunks(chunk_size) {
            dec.extend(chunk);
            while let Some(m) = dec.next_msg().unwrap() {
                out.push(m);
            }
        }
        prop_assert_eq!(out, msgs);
        prop_assert_eq!(dec.pending(), 0);
    }

    /// The stream decoder is total on arbitrary bytes: garbage yields
    /// frames, `None`, or a structured error — never a panic — and an
    /// over-cap length prefix is always rejected.
    #[test]
    fn stream_decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut dec = StreamDecoder::new();
        dec.extend(&bytes);
        loop {
            match dec.next_frame() {
                Ok(Some(frame)) => prop_assert!(frame.len() <= MAX_FRAME_BYTES),
                Ok(None) => break,
                Err(_) => break, // poisoned stream: the reader closes it
            }
        }
    }

    /// An over-cap length prefix errors immediately — before the decoder
    /// buffers (or waits for) a single payload byte.
    #[test]
    fn oversized_prefix_rejected_eagerly(
        excess in 1u32..4097,
        noise in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        let bad = (MAX_FRAME_BYTES as u32).saturating_add(excess);
        let mut dec = StreamDecoder::new();
        dec.extend(&bad.to_le_bytes());
        dec.extend(&noise);
        prop_assert!(dec.next_frame().is_err());
    }

    /// The batched writer's on-wire byte stream is identical to prefixing
    /// and `write_all`-ing each frame individually, for arbitrary frame
    /// sequences and arbitrary partial-write behaviour — batching is
    /// invisible to the receiving `StreamDecoder`.
    #[test]
    fn batched_writer_stream_equals_frame_at_a_time(
        specs in proptest::collection::vec(
            (0u8..3, any::<u64>(), proptest::collection::vec(-1e3f32..1e3, 0..24)),
            0..8,
        ),
        limits in proptest::collection::vec(1usize..97, 1..8),
        vectored in any::<bool>(),
    ) {
        let msgs: Vec<WireMsg> = specs
            .into_iter()
            .map(|(tag, step, payload)| build_msg(tag, step, payload))
            .collect();
        let frames: Vec<Arc<[u8]>> = msgs.iter().map(|m| encode(m).into()).collect();
        let mut expected = Vec::new();
        let mut prefixed = Vec::new();
        for f in &frames {
            prefix_frame(f, &mut prefixed);
            expected.extend_from_slice(&prefixed);
        }
        let mut sink = ChoppyWriter { out: Vec::new(), limits, calls: 0, vectored };
        let mut scratch = Vec::new();
        write_frames(&mut sink, &frames, &mut scratch).unwrap();
        prop_assert_eq!(&sink.out, &expected);
        // And the stream decodes back to exactly the original sequence.
        let mut dec = StreamDecoder::new();
        dec.extend(&sink.out);
        let mut out = Vec::new();
        while let Some(m) = dec.next_msg().unwrap() {
            out.push(m);
        }
        prop_assert_eq!(out, msgs);
        prop_assert_eq!(dec.pending(), 0);
    }

    /// Truncating a prefixed stream anywhere never yields a phantom
    /// message: the decoder returns strictly a prefix of the original
    /// sequence, then waits for more input (or errors) — it never invents
    /// or reorders frames.
    #[test]
    fn stream_truncation_yields_a_prefix(
        specs in proptest::collection::vec(
            (0u8..3, any::<u64>(), proptest::collection::vec(-1e3f32..1e3, 0..16)),
            1..6,
        ),
        cut_frac in 0.0f64..1.0,
    ) {
        let msgs: Vec<WireMsg> = specs
            .into_iter()
            .map(|(tag, step, payload)| build_msg(tag, step, payload))
            .collect();
        let mut stream = Vec::new();
        let mut prefixed = Vec::new();
        for m in &msgs {
            prefix_frame(&encode(m), &mut prefixed);
            stream.extend_from_slice(&prefixed);
        }
        let cut = ((stream.len() as f64) * cut_frac) as usize;
        let mut dec = StreamDecoder::new();
        dec.extend(&stream[..cut]);
        let mut out = Vec::new();
        while let Ok(Some(m)) = dec.next_msg() {
            out.push(m);
        }
        prop_assert!(out.len() <= msgs.len());
        prop_assert_eq!(&msgs[..out.len()], &out[..]);
    }
}
