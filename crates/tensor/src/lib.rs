//! Dense `f32` tensor math.
//!
//! This crate is the numerical substrate (S1 in `DESIGN.md`) that replaces
//! TensorFlow's tensor machinery in the GuanYu reproduction. It provides:
//!
//! * [`Shape`] — a small owned dimension list with stride computation,
//! * [`Tensor`] — a dense, row-major `f32` tensor,
//! * element-wise and scalar arithmetic, matrix multiplication, reductions,
//! * vector geometry helpers ([`Tensor::dot`], [`Tensor::norm`],
//!   [`Tensor::distance`], [`Tensor::cosine_similarity`]) used by the robust
//!   aggregation rules,
//! * seeded random initialisation via [`TensorRng`].
//!
//! Everything is deterministic given a seed, which is what makes the paper's
//! experiments exactly reproducible in this code base.
//!
//! # Example
//!
//! ```
//! use tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b).unwrap();
//! assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod error;
mod ops;
mod random;
mod shape;
mod shard;
#[allow(clippy::module_inception)]
mod tensor;

pub use error::TensorError;
pub use random::TensorRng;
pub use shape::Shape;
pub use shard::TensorShard;
pub use tensor::Tensor;

/// Convenience alias: results of fallible tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;
