//! Seeded random tensor generation.
//!
//! All stochasticity in the reproduction flows through [`TensorRng`], a thin
//! wrapper over an in-crate ChaCha8 block cipher keyed by an explicit `u64`
//! seed (the build environment has no crates.io access, so the usual
//! `rand_chacha` dependency is replaced by ~60 lines of ChaCha). Every
//! experiment binary takes a seed, so every figure in EXPERIMENTS.md is
//! bit-for-bit reproducible.

use crate::Tensor;

/// One round of splitmix64 — used only to expand the `u64` seed into a
/// 256-bit ChaCha key.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// ChaCha with 8 rounds: the statistically-strong, fast PRNG core.
#[derive(Debug, Clone)]
struct ChaCha8 {
    key: [u32; 8],
    /// Stream id (the ChaCha nonce): distinct streams under one key are
    /// independent, which is what [`TensorRng::fork`] relies on.
    stream: u64,
    counter: u64,
    block: [u32; 16],
    /// Next unread word in `block`; 16 = exhausted.
    idx: usize,
}

impl ChaCha8 {
    fn new(seed: u64) -> Self {
        let mut s = seed;
        let mut key = [0u32; 8];
        for i in 0..4 {
            let x = splitmix64(&mut s);
            key[2 * i] = x as u32;
            key[2 * i + 1] = (x >> 32) as u32;
        }
        ChaCha8 {
            key,
            stream: 0,
            counter: 0,
            block: [0; 16],
            idx: 16,
        }
    }

    fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.counter = 0;
        self.idx = 16;
    }

    fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    fn refill(&mut self) {
        let state: [u32; 16] = [
            0x6170_7865,
            0x3320_646E,
            0x7962_2D32,
            0x6B20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            self.stream as u32,
            (self.stream >> 32) as u32,
        ];
        let mut w = state;
        for _ in 0..4 {
            // Column round.
            Self::quarter_round(&mut w, 0, 4, 8, 12);
            Self::quarter_round(&mut w, 1, 5, 9, 13);
            Self::quarter_round(&mut w, 2, 6, 10, 14);
            Self::quarter_round(&mut w, 3, 7, 11, 15);
            // Diagonal round.
            Self::quarter_round(&mut w, 0, 5, 10, 15);
            Self::quarter_round(&mut w, 1, 6, 11, 12);
            Self::quarter_round(&mut w, 2, 7, 8, 13);
            Self::quarter_round(&mut w, 3, 4, 9, 14);
        }
        for (out, (&mixed, &initial)) in self.block.iter_mut().zip(w.iter().zip(state.iter())) {
            *out = mixed.wrapping_add(initial);
        }
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }

    fn next_u32(&mut self) -> u32 {
        if self.idx == 16 {
            self.refill();
        }
        let v = self.block[self.idx];
        self.idx += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        lo | (hi << 32)
    }
}

/// A deterministic random source for tensors.
#[derive(Debug, Clone)]
pub struct TensorRng {
    rng: ChaCha8,
}

impl TensorRng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        TensorRng {
            rng: ChaCha8::new(seed),
        }
    }

    /// Derives an independent child generator. Used to give each node in a
    /// simulation its own stream so that adding a node does not perturb the
    /// draws of the others.
    pub fn fork(&mut self, stream: u64) -> Self {
        let seed = self.rng.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut child = ChaCha8::new(seed);
        child.set_stream(stream);
        TensorRng { rng: child }
    }

    /// A uniform draw in `[0, 1)` with 53 bits of precision.
    fn unit(&mut self) -> f64 {
        (self.rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        let v = (f64::from(lo) + self.unit() * (f64::from(hi) - f64::from(lo))) as f32;
        // Guard the (rare) upward rounding onto the excluded bound.
        if v >= hi {
            lo
        } else {
            v
        }
    }

    /// A standard-normal sample (Box–Muller).
    pub fn normal(&mut self, mean: f32, std: f32) -> f32 {
        // Box–Muller transform; one sample per call keeps the stream simple
        // and deterministic.
        let u1: f64 = f64::EPSILON + self.unit() * (1.0 - f64::EPSILON);
        let u2: f64 = self.unit();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std * z as f32
    }

    /// A uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is an empty range");
        (self.rng.next_u64() % n as u64) as usize
    }

    /// A uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// A tensor with i.i.d. uniform entries in `[lo, hi)`.
    pub fn uniform_tensor(&mut self, dims: &[usize], lo: f32, hi: f32) -> Tensor {
        let mut t = Tensor::zeros(dims);
        for v in t.as_mut_slice() {
            *v = self.uniform(lo, hi);
        }
        t
    }

    /// A tensor with i.i.d. normal entries.
    pub fn normal_tensor(&mut self, dims: &[usize], mean: f32, std: f32) -> Tensor {
        let mut t = Tensor::zeros(dims);
        for v in t.as_mut_slice() {
            *v = self.normal(mean, std);
        }
        t
    }

    /// Glorot/Xavier-uniform initialisation for a layer with the given fan-in
    /// and fan-out — the standard initialisation for the paper's CNN layers.
    pub fn glorot_uniform(&mut self, dims: &[usize], fan_in: usize, fan_out: usize) -> Tensor {
        let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
        self.uniform_tensor(dims, -limit, limit)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (k ≤ n).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct indices from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = TensorRng::new(42);
        let mut b = TensorRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = TensorRng::new(1);
        let mut b = TensorRng::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut a = TensorRng::new(7);
        let mut b = TensorRng::new(7);
        let mut fa = a.fork(3);
        let mut fb = b.fork(3);
        for _ in 0..32 {
            assert_eq!(fa.next_u64(), fb.next_u64());
        }
        // forks with different stream ids disagree
        let mut c = TensorRng::new(7);
        let mut fc = c.fork(4);
        let xs: Vec<u64> = (0..8).map(|_| fa.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| fc.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn chacha_blocks_are_not_degenerate() {
        // Consecutive words of one stream must not repeat trivially, and
        // streams under the same key must diverge.
        let mut r = TensorRng::new(0);
        let words: Vec<u64> = (0..64).map(|_| r.next_u64()).collect();
        let distinct: std::collections::HashSet<_> = words.iter().collect();
        assert_eq!(distinct.len(), words.len());
    }

    #[test]
    fn uniform_within_bounds() {
        let mut r = TensorRng::new(0);
        for _ in 0..1000 {
            let x = r.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn normal_moments_roughly_correct() {
        let mut r = TensorRng::new(123);
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| r.normal(1.0, 2.0)).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn uniform_tensor_shape_and_bounds() {
        let mut r = TensorRng::new(5);
        let t = r.uniform_tensor(&[3, 4], 0.0, 1.0);
        assert_eq!(t.dims(), &[3, 4]);
        assert!(t.as_slice().iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn glorot_limit_respected() {
        let mut r = TensorRng::new(5);
        let t = r.glorot_uniform(&[100, 100], 100, 100);
        let limit = (6.0f32 / 200.0).sqrt();
        assert!(t.as_slice().iter().all(|&x| x.abs() <= limit));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = TensorRng::new(9);
        let mut xs: Vec<usize> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = TensorRng::new(11);
        let idx = r.sample_indices(20, 10);
        assert_eq!(idx.len(), 10);
        let set: std::collections::HashSet<_> = idx.iter().collect();
        assert_eq!(set.len(), 10);
        assert!(idx.iter().all(|&i| i < 20));
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_indices_rejects_oversample() {
        let mut r = TensorRng::new(11);
        let _ = r.sample_indices(3, 4);
    }

    #[test]
    fn below_bounds() {
        let mut r = TensorRng::new(3);
        for _ in 0..100 {
            assert!(r.below(7) < 7);
        }
    }
}
