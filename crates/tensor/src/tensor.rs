//! The dense tensor type and its core arithmetic.

use std::sync::Arc;

use crate::{Result, Shape, TensorError};

/// A dense, row-major `f32` tensor.
///
/// `Tensor` is the unit of exchange throughout the reproduction: model
/// parameter vectors, stochastic gradients and layer activations are all
/// tensors. Parameter vectors and gradients are rank-1 tensors of dimension
/// `d` (1.75M for the paper's CNN).
///
/// # Storage
///
/// The flat buffer is an `Arc<[f32]>` with copy-on-write mutation:
///
/// * **Cloning is `O(1)`** — a reference-count bump. Broadcasting one model
///   to `n` workers therefore shares a single allocation instead of copying
///   `n · d` floats, which is what makes the per-round fan-out in the
///   protocol engines zero-copy.
/// * **Mutation is copy-on-write** — the first in-place operation on a
///   tensor whose buffer is shared detaches it onto a private copy;
///   uniquely-owned tensors mutate in place with no copy at all.
///
/// Use [`Tensor::shares_storage`] to observe sharing (the zero-copy tests
/// rely on it).
#[derive(Debug, Clone)]
pub struct Tensor {
    shape: Shape,
    data: Arc<[f32]>,
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape
            && (Arc::ptr_eq(&self.data, &other.data) || self.data == other.data)
    }
}

impl Tensor {
    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not equal
    /// the shape's volume.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if shape.volume() != data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: data.into(),
        })
    }

    /// Creates a rank-1 tensor from a flat buffer.
    pub fn from_flat(data: Vec<f32>) -> Self {
        let shape = Shape::new(&[data.len()]);
        Tensor {
            shape,
            data: data.into(),
        }
    }

    /// A tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let data = vec![0.0; shape.volume()].into();
        Tensor { shape, data }
    }

    /// A tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let data = vec![value; shape.volume()].into();
        Tensor { shape, data }
    }

    /// The `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut data = vec![0.0f32; n * n];
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        Tensor {
            shape: Shape::new(&[n, n]),
            data: data.into(),
        }
    }

    /// A scalar (rank-0) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: vec![value].into(),
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension sizes, as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the flat row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// A handle on the shared storage (refcount bump, no copy) — the shard
    /// views in [`crate::shard`] are built from this.
    pub(crate) fn storage(&self) -> Arc<[f32]> {
        Arc::clone(&self.data)
    }

    /// Wraps an already-shared buffer as a rank-1 tensor without copying —
    /// the zero-copy merge path in [`crate::shard`].
    pub(crate) fn from_shared(data: Arc<[f32]>) -> Self {
        let shape = Shape::new(&[data.len()]);
        Tensor { shape, data }
    }

    /// Mutable view of the flat row-major buffer.
    ///
    /// Copy-on-write: detaches this tensor onto a private buffer first if
    /// the storage is currently shared with other clones.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        if Arc::get_mut(&mut self.data).is_none() {
            self.data = Arc::from(&self.data[..]);
        }
        Arc::get_mut(&mut self.data).expect("buffer is uniquely owned after detach")
    }

    /// Whether `self` and `other` share the same underlying buffer (clones
    /// that have not diverged do; this is what "zero-copy broadcast" means).
    pub fn shares_storage(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// Consumes the tensor, returning the flat buffer.
    ///
    /// Always copies: a `Vec` cannot take ownership of an `Arc<[f32]>`
    /// allocation (the Arc header precedes the elements), even when the
    /// tensor is the last clone. Prefer [`Tensor::as_slice`] on hot paths.
    pub fn into_vec(self) -> Vec<f32> {
        self.data.to_vec()
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for invalid indices.
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for invalid indices.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(index)?;
        self.as_mut_slice()[off] = value;
        Ok(())
    }

    /// Returns a tensor with a new shape **sharing this tensor's storage**
    /// (reshaping is metadata-only).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the volumes differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if shape.volume() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: self.data.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: Arc::clone(&self.data),
        })
    }

    /// Flattens to a rank-1 tensor sharing this tensor's storage.
    pub fn flatten(&self) -> Self {
        Tensor {
            shape: Shape::new(&[self.data.len()]),
            data: Arc::clone(&self.data),
        }
    }

    fn check_same_shape(&self, other: &Self) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        Ok(())
    }

    /// Element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add(&self, other: &Self) -> Result<Self> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise difference.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn sub(&self, other: &Self) -> Result<Self> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn mul(&self, other: &Self) -> Result<Self> {
        self.zip_with(other, |a, b| a * b)
    }

    /// Element-wise quotient.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn div(&self, other: &Self) -> Result<Self> {
        self.zip_with(other, |a, b| a / b)
    }

    /// Applies a binary function element-wise.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn zip_with<F: Fn(f32, f32) -> f32>(&self, other: &Self, f: F) -> Result<Self> {
        self.check_same_shape(other)?;
        let data: Vec<f32> = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Tensor {
            shape: self.shape.clone(),
            data: data.into(),
        })
    }

    /// In-place element-wise addition: `self += other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add_assign(&mut self, other: &Self) -> Result<()> {
        self.check_same_shape(other)?;
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.data.iter()) {
            *a += b;
        }
        Ok(())
    }

    /// In-place AXPY: `self += alpha * other`, the SGD update primitive.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Self) -> Result<()> {
        self.check_same_shape(other)?;
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Applies a unary function element-wise, returning a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Self {
        let data: Vec<f32> = self.data.iter().map(|&a| f(a)).collect();
        Tensor {
            shape: self.shape.clone(),
            data: data.into(),
        }
    }

    /// Applies a unary function element-wise in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for a in self.as_mut_slice() {
            *a = f(*a);
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Self {
        self.map(|a| a * s)
    }

    /// Adds `s` to every element.
    pub fn shift(&self, s: f32) -> Self {
        self.map(|a| a + s)
    }

    /// Element-wise negation.
    pub fn neg(&self) -> Self {
        self.map(|a| -a)
    }

    /// `true` iff every element is finite (no NaN / ±inf).
    ///
    /// The protocol uses this as a first-line sanity filter on incoming
    /// Byzantine messages: a vector containing NaN would otherwise poison
    /// the coordinate-wise median.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|a| a.is_finite())
    }
}

impl serde::Serialize for Tensor {
    fn serialize_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            (
                "shape".to_owned(),
                serde::Serialize::serialize_value(&self.shape),
            ),
            (
                "data".to_owned(),
                serde::Serialize::serialize_value(&self.data[..]),
            ),
        ])
    }
}

impl serde::Deserialize for Tensor {
    fn deserialize_value(v: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::DeError::expected("object", "Tensor"))?;
        let shape: Shape = serde::Deserialize::deserialize_value(serde::get_field(obj, "shape")?)?;
        let data: Vec<f32> = serde::Deserialize::deserialize_value(serde::get_field(obj, "data")?)?;
        if shape.volume() != data.len() {
            return Err(serde::DeError::msg(format!(
                "tensor data length {} does not match shape volume {}",
                data.len(),
                shape.volume()
            )));
        }
        Ok(Tensor {
            shape,
            data: data.into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).is_ok());
    }

    #[test]
    fn zeros_ones_full() {
        assert_eq!(Tensor::zeros(&[2, 2]).as_slice(), &[0.0; 4]);
        assert_eq!(Tensor::ones(&[3]).as_slice(), &[1.0; 3]);
        assert_eq!(Tensor::full(&[2], 7.5).as_slice(), &[7.5, 7.5]);
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::eye(3);
        for r in 0..3 {
            for c in 0..3 {
                let expected = if r == c { 1.0 } else { 0.0 };
                assert_eq!(i.get(&[r, c]).unwrap(), expected);
            }
        }
    }

    #[test]
    fn scalar_tensor() {
        let s = Tensor::scalar(3.5);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.as_slice(), &[3.5]);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 9.0).unwrap();
        assert_eq!(t.get(&[1, 2]).unwrap(), 9.0);
        assert_eq!(t.get(&[0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn add_sub_mul_div() {
        let a = Tensor::from_flat(vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_flat(vec![4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).unwrap().as_slice(), &[4.0, 2.5, 2.0]);
    }

    #[test]
    fn binary_ops_reject_shape_mismatch() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[4]);
        assert!(matches!(a.add(&b), Err(TensorError::ShapeMismatch { .. })));
    }

    #[test]
    fn axpy_matches_manual() {
        let mut a = Tensor::from_flat(vec![1.0, 1.0]);
        let g = Tensor::from_flat(vec![2.0, 4.0]);
        a.axpy(-0.5, &g).unwrap();
        assert_eq!(a.as_slice(), &[0.0, -1.0]);
    }

    #[test]
    fn axpy_on_self_alias_is_safe() {
        // `self += alpha * self` through a clone sharing the same buffer:
        // the copy-on-write detach must snapshot the right-hand side first.
        let mut a = Tensor::from_flat(vec![1.0, 2.0]);
        let alias = a.clone();
        a.axpy(1.0, &alias).unwrap();
        assert_eq!(a.as_slice(), &[2.0, 4.0]);
        assert_eq!(alias.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn scale_shift_neg() {
        let a = Tensor::from_flat(vec![1.0, -2.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, -4.0]);
        assert_eq!(a.shift(1.0).as_slice(), &[2.0, -1.0]);
        assert_eq!(a.neg().as_slice(), &[-1.0, 2.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_flat(vec![1.0, 2.0, 3.0, 4.0]);
        let m = a.reshape(&[2, 2]).unwrap();
        assert_eq!(m.get(&[1, 0]).unwrap(), 3.0);
        assert!(a.reshape(&[3]).is_err());
    }

    #[test]
    fn flatten_rank() {
        let a = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(a.flatten().dims(), &[24]);
    }

    #[test]
    fn clone_shares_storage_until_mutation() {
        let a = Tensor::from_flat(vec![1.0, 2.0, 3.0]);
        let b = a.clone();
        assert!(a.shares_storage(&b), "clone must be a refcount bump");
        let c = a.reshape(&[3]).unwrap();
        assert!(a.shares_storage(&c), "reshape must share storage");
        assert!(a.shares_storage(&a.flatten()));

        // First mutation detaches the mutated clone only.
        let mut d = a.clone();
        d.set(&[0], 9.0).unwrap();
        assert!(!a.shares_storage(&d), "mutation must copy-on-write");
        assert_eq!(a.as_slice(), &[1.0, 2.0, 3.0]);
        assert_eq!(d.as_slice(), &[9.0, 2.0, 3.0]);
        assert!(a.shares_storage(&b), "other clones keep sharing");
    }

    #[test]
    fn unique_tensor_mutates_without_detach() {
        let mut a = Tensor::from_flat(vec![1.0, 2.0]);
        let before = a.as_slice().as_ptr();
        a.map_inplace(|x| x + 1.0);
        assert_eq!(a.as_slice().as_ptr(), before, "no copy when uniquely owned");
    }

    #[test]
    fn is_finite_detects_nan_and_inf() {
        let ok = Tensor::from_flat(vec![1.0, 2.0]);
        assert!(ok.is_finite());
        let nan = Tensor::from_flat(vec![1.0, f32::NAN]);
        assert!(!nan.is_finite());
        let inf = Tensor::from_flat(vec![f32::INFINITY]);
        assert!(!inf.is_finite());
    }

    #[test]
    fn serde_roundtrip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let json = serde_json::to_string(&a).unwrap();
        let back: Tensor = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn serde_rejects_inconsistent_shape() {
        let bad = r#"{"shape":[3],"data":[1.0,2.0]}"#;
        assert!(serde_json::from_str::<Tensor>(bad).is_err());
    }

    #[test]
    fn map_inplace_applies() {
        let mut a = Tensor::from_flat(vec![1.0, 4.0, 9.0]);
        a.map_inplace(|x| x.sqrt());
        assert_eq!(a.as_slice(), &[1.0, 2.0, 3.0]);
    }
}
