//! Linear algebra, reductions and vector geometry on [`Tensor`].

use crate::{Result, Tensor, TensorError};

impl Tensor {
    /// Matrix product of two rank-2 tensors: `(m×k) · (k×n) → (m×n)`.
    ///
    /// This is the plain triple loop with an `ikj` ordering (cache-friendly
    /// row-major access on both operands); it is fast enough to train the
    /// paper's 1.75M-parameter CNN on synthetic data in simulation.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless both operands are rank 2
    /// and [`TensorError::MatmulDimMismatch`] when inner dimensions differ.
    pub fn matmul(&self, other: &Self) -> Result<Self> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
            });
        }
        if other.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: other.rank(),
            });
        }
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch {
                left_cols: k,
                right_rows: k2,
            });
        }
        let a = self.as_slice();
        let b = other.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let av = a[i * k + p];
                if av == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless the tensor is rank 2.
    pub fn transpose(&self) -> Result<Self> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
            });
        }
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let a = self.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = a[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Arithmetic mean of all elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for empty tensors.
    pub fn mean(&self) -> Result<f32> {
        if self.is_empty() {
            return Err(TensorError::Empty);
        }
        Ok(self.sum() / self.len() as f32)
    }

    /// Maximum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for empty tensors.
    pub fn max(&self) -> Result<f32> {
        if self.is_empty() {
            return Err(TensorError::Empty);
        }
        Ok(self
            .as_slice()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max))
    }

    /// Minimum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for empty tensors.
    pub fn min(&self) -> Result<f32> {
        if self.is_empty() {
            return Err(TensorError::Empty);
        }
        Ok(self
            .as_slice()
            .iter()
            .copied()
            .fold(f32::INFINITY, f32::min))
    }

    /// Index of the maximum element in the flat buffer (first on ties).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for empty tensors.
    pub fn argmax(&self) -> Result<usize> {
        if self.is_empty() {
            return Err(TensorError::Empty);
        }
        let mut best = 0usize;
        let mut best_v = self.as_slice()[0];
        for (i, &v) in self.as_slice().iter().enumerate().skip(1) {
            if v > best_v {
                best = i;
                best_v = v;
            }
        }
        Ok(best)
    }

    /// Inner product of two same-shape tensors viewed as flat vectors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn dot(&self, other: &Self) -> Result<f32> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        Ok(self
            .as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(&a, &b)| a * b)
            .sum())
    }

    /// Euclidean (L2) norm of the tensor viewed as a flat vector.
    ///
    /// Uses `f64` accumulation: parameter vectors here have millions of
    /// coordinates, and `f32` accumulation loses several digits at that size.
    pub fn norm(&self) -> f32 {
        self.as_slice()
            .iter()
            .map(|&a| (a as f64) * (a as f64))
            .sum::<f64>()
            .sqrt() as f32
    }

    /// Squared Euclidean norm (avoids the square root).
    pub fn norm_sq(&self) -> f32 {
        self.as_slice()
            .iter()
            .map(|&a| (a as f64) * (a as f64))
            .sum::<f64>() as f32
    }

    /// Euclidean distance between two same-shape tensors.
    ///
    /// This is the metric Multi-Krum scores are built from.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn distance(&self, other: &Self) -> Result<f32> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        Ok(self
            .as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(&a, &b)| {
                let d = (a - b) as f64;
                d * d
            })
            .sum::<f64>()
            .sqrt() as f32)
    }

    /// Cosine similarity `⟨a,b⟩ / (‖a‖‖b‖)`, the quantity reported in the
    /// paper's Table 2 (alignment of difference vectors).
    ///
    /// Returns 0 when either vector is zero.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn cosine_similarity(&self, other: &Self) -> Result<f32> {
        let dot = self.dot(other)? as f64;
        let na = self.norm() as f64;
        let nb = other.norm() as f64;
        if na == 0.0 || nb == 0.0 {
            return Ok(0.0);
        }
        Ok((dot / (na * nb)) as f32)
    }

    /// Arithmetic mean of a non-empty slice of same-shape tensors — the
    /// vulnerable "vanilla" aggregation the paper contrasts against.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty slice and
    /// [`TensorError::ShapeMismatch`] if shapes disagree.
    pub fn mean_of(tensors: &[Tensor]) -> Result<Tensor> {
        let first = tensors.first().ok_or(TensorError::Empty)?;
        let mut acc = first.clone();
        for t in &tensors[1..] {
            acc.add_assign(t)?;
        }
        Ok(acc.scale(1.0 / tensors.len() as f32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, d: &[usize]) -> Tensor {
        Tensor::from_vec(v, d).unwrap()
    }

    #[test]
    fn matmul_identity() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let i = Tensor::eye(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = t(vec![1.0, 2.0], &[2, 1]);
        let b = t(vec![1.0, 2.0], &[2, 1]);
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::MatmulDimMismatch { .. })
        ));
        let v = Tensor::from_flat(vec![1.0]);
        assert!(matches!(
            v.matmul(&a),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn transpose_involution() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let at = a.transpose().unwrap();
        assert_eq!(at.dims(), &[3, 2]);
        assert_eq!(at.get(&[2, 1]).unwrap(), 6.0);
        assert_eq!(at.transpose().unwrap(), a);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_flat(vec![1.0, -2.0, 3.0]);
        assert_eq!(a.sum(), 2.0);
        assert!((a.mean().unwrap() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(a.max().unwrap(), 3.0);
        assert_eq!(a.min().unwrap(), -2.0);
        assert_eq!(a.argmax().unwrap(), 2);
    }

    #[test]
    fn argmax_first_on_tie() {
        let a = Tensor::from_flat(vec![5.0, 5.0, 1.0]);
        assert_eq!(a.argmax().unwrap(), 0);
    }

    #[test]
    fn dot_and_norm() {
        let a = Tensor::from_flat(vec![3.0, 4.0]);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.norm_sq(), 25.0);
        let b = Tensor::from_flat(vec![1.0, 0.0]);
        assert_eq!(a.dot(&b).unwrap(), 3.0);
    }

    #[test]
    fn distance_symmetry_and_zero() {
        let a = Tensor::from_flat(vec![1.0, 2.0]);
        let b = Tensor::from_flat(vec![4.0, 6.0]);
        assert_eq!(a.distance(&b).unwrap(), 5.0);
        assert_eq!(b.distance(&a).unwrap(), 5.0);
        assert_eq!(a.distance(&a).unwrap(), 0.0);
    }

    #[test]
    fn cosine_similarity_basics() {
        let a = Tensor::from_flat(vec![1.0, 0.0]);
        let b = Tensor::from_flat(vec![0.0, 1.0]);
        assert_eq!(a.cosine_similarity(&b).unwrap(), 0.0);
        assert!((a.cosine_similarity(&a).unwrap() - 1.0).abs() < 1e-6);
        let na = a.neg();
        assert!((a.cosine_similarity(&na).unwrap() + 1.0).abs() < 1e-6);
        let z = Tensor::zeros(&[2]);
        assert_eq!(a.cosine_similarity(&z).unwrap(), 0.0);
    }

    #[test]
    fn mean_of_tensors() {
        let a = Tensor::from_flat(vec![1.0, 2.0]);
        let b = Tensor::from_flat(vec![3.0, 4.0]);
        let m = Tensor::mean_of(&[a, b]).unwrap();
        assert_eq!(m.as_slice(), &[2.0, 3.0]);
        assert!(matches!(Tensor::mean_of(&[]), Err(TensorError::Empty)));
    }

    #[test]
    fn empty_reductions_err() {
        let e = Tensor::zeros(&[0]);
        assert!(e.mean().is_err());
        assert!(e.max().is_err());
        assert!(e.min().is_err());
        assert!(e.argmax().is_err());
    }

    #[test]
    fn norm_large_vector_f64_accumulation() {
        // 4M elements of 1e-3: exact norm is 1e-3 * sqrt(4e6) = 2.0.
        let n = 4_000_000;
        let a = Tensor::full(&[n], 1e-3);
        assert!((a.norm() - 2.0).abs() < 1e-4);
    }
}
