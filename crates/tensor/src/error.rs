//! Error type for tensor operations.

use std::fmt;

/// Errors produced by fallible tensor operations.
///
/// The tensor API is fallible wherever shapes interact: construction from a
/// flat buffer, element-wise binary operations, matrix multiplication and
/// reshaping. Aggregation rules and the neural-network layers rely on these
/// errors to reject malformed (e.g. Byzantine, wrong-dimension) inputs
/// instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by the shape does not match the
    /// provided buffer length.
    LengthMismatch {
        /// Number of elements the shape requires.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two tensors that must share a shape do not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Vec<usize>,
        /// Shape of the right-hand operand.
        right: Vec<usize>,
    },
    /// The operation requires a tensor of a specific rank.
    RankMismatch {
        /// Required rank.
        expected: usize,
        /// Actual rank.
        actual: usize,
    },
    /// Inner dimensions disagree in a matrix product.
    MatmulDimMismatch {
        /// Columns of the left operand.
        left_cols: usize,
        /// Rows of the right operand.
        right_rows: usize,
    },
    /// An operation that needs at least one element got an empty tensor.
    Empty,
    /// An index was out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor's shape.
        shape: Vec<usize>,
    },
    /// A shard range does not fit the flat storage, or a shard set does not
    /// tile `0..len` contiguously (see [`crate::TensorShard`]).
    InvalidShard {
        /// Start of the offending coordinate range.
        start: usize,
        /// End (exclusive) of the offending coordinate range.
        end: usize,
        /// Length of the flat storage the range must fit or tile.
        len: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "buffer length {actual} does not match shape volume {expected}"
            ),
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "rank mismatch: expected {expected}, got {actual}")
            }
            TensorError::MatmulDimMismatch {
                left_cols,
                right_rows,
            } => write!(
                f,
                "matmul inner dimensions disagree: {left_cols} vs {right_rows}"
            ),
            TensorError::Empty => write!(f, "operation requires a non-empty tensor"),
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::InvalidShard { start, end, len } => {
                write!(
                    f,
                    "shard range {start}..{end} invalid for storage of length {len}"
                )
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_length_mismatch() {
        let e = TensorError::LengthMismatch {
            expected: 4,
            actual: 3,
        };
        assert_eq!(
            e.to_string(),
            "buffer length 3 does not match shape volume 4"
        );
    }

    #[test]
    fn display_shape_mismatch() {
        let e = TensorError::ShapeMismatch {
            left: vec![2, 2],
            right: vec![3],
        };
        assert!(e.to_string().contains("[2, 2]"));
        assert!(e.to_string().contains("[3]"));
    }

    #[test]
    fn display_matmul_mismatch() {
        let e = TensorError::MatmulDimMismatch {
            left_cols: 2,
            right_rows: 3,
        };
        assert!(e.to_string().contains("2 vs 3"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&TensorError::Empty);
    }
}
