//! Zero-copy shard views over a tensor's flat storage.
//!
//! A [`TensorShard`] is `(Arc<[f32]>, Range<usize>)`: a refcount bump plus a
//! coordinate range, nothing else. Splitting a parameter vector into shard
//! views copies no data, and merging views that still share one storage and
//! tile it exactly reconstructs the original tensor by handing the same
//! `Arc` back (DESIGN.md §9). The sharded runtime uses these views to slice
//! the gradient plane across server groups without ever materialising
//! per-shard buffers on the scatter side.

use std::ops::Range;
use std::sync::Arc;

use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::Result;

/// A zero-copy view of a contiguous coordinate range of a tensor's flat
/// row-major storage.
///
/// Constructed by [`Tensor::shard_view`]; by construction the range always
/// fits the storage it points into. Cloning a shard bumps the storage
/// refcount — no float is ever copied until [`TensorShard::to_tensor`].
#[derive(Debug, Clone)]
pub struct TensorShard {
    data: Arc<[f32]>,
    range: Range<usize>,
}

impl TensorShard {
    /// Read-only view of this shard's coordinates.
    pub fn as_slice(&self) -> &[f32] {
        &self.data[self.range.clone()]
    }

    /// The coordinate range this shard covers in the full vector.
    pub fn range(&self) -> Range<usize> {
        self.range.clone()
    }

    /// Global coordinate of this shard's first element.
    pub fn offset(&self) -> usize {
        self.range.start
    }

    /// Number of coordinates in the shard.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// Whether the shard covers zero coordinates.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// Whether this shard still points into `tensor`'s storage (i.e. the
    /// split really was zero-copy and nothing has detached since).
    pub fn shares_storage(&self, tensor: &Tensor) -> bool {
        Arc::ptr_eq(&self.data, &tensor.storage())
    }

    /// Materialises the shard as an owned rank-1 tensor (the one copy in
    /// the shard lifecycle, used when a shard must travel alone).
    pub fn to_tensor(&self) -> Tensor {
        Tensor::from_flat(self.as_slice().to_vec())
    }
}

impl Tensor {
    /// A zero-copy shard view of coordinates `range` of the flat storage.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShard`] if the range does not fit the
    /// storage (`start > end` or `end > len`).
    pub fn shard_view(&self, range: Range<usize>) -> Result<TensorShard> {
        if range.start > range.end || range.end > self.len() {
            return Err(TensorError::InvalidShard {
                start: range.start,
                end: range.end,
                len: self.len(),
            });
        }
        Ok(TensorShard {
            data: self.storage(),
            range,
        })
    }

    /// Reassembles shards into one rank-1 tensor.
    ///
    /// The shards must tile `0..d` contiguously in order (first starts at 0,
    /// each next shard starts where the previous ended). When every shard
    /// still points at the *same* storage and the tiling covers it exactly,
    /// the merge is zero-copy: the shared `Arc` is handed back. Otherwise
    /// the coordinates are gathered with a single copy.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShard`] for an empty shard list or a
    /// non-contiguous tiling; the reported range is the offending shard's
    /// and `len` is the coordinate where the tiling should have continued.
    pub fn merge_shards(shards: &[TensorShard]) -> Result<Tensor> {
        let first = shards.first().ok_or(TensorError::InvalidShard {
            start: 0,
            end: 0,
            len: 0,
        })?;
        let mut expected = 0usize;
        for shard in shards {
            if shard.range.start != expected {
                return Err(TensorError::InvalidShard {
                    start: shard.range.start,
                    end: shard.range.end,
                    len: expected,
                });
            }
            expected = shard.range.end;
        }
        let shared = shards.iter().all(|s| Arc::ptr_eq(&s.data, &first.data))
            && expected == first.data.len();
        if shared {
            return Ok(Tensor::from_shared(Arc::clone(&first.data)));
        }
        let mut out = Vec::with_capacity(expected);
        for shard in shards {
            out.extend_from_slice(shard.as_slice());
        }
        Ok(Tensor::from_flat(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(d: usize) -> Tensor {
        Tensor::from_flat((0..d).map(|i| i as f32 * 0.5 - 3.0).collect())
    }

    #[test]
    fn split_is_zero_copy() {
        let t = params(10);
        let a = t.shard_view(0..4).unwrap();
        let b = t.shard_view(4..10).unwrap();
        assert!(a.shares_storage(&t) && b.shares_storage(&t));
        assert_eq!(a.as_slice(), &t.as_slice()[..4]);
        assert_eq!(b.as_slice(), &t.as_slice()[4..]);
        assert_eq!((a.offset(), a.len()), (0, 4));
    }

    #[test]
    fn merge_of_shared_tiling_is_zero_copy() {
        let t = params(9);
        let shards: Vec<TensorShard> = [0..2, 2..3, 3..9]
            .into_iter()
            .map(|r| t.shard_view(r).unwrap())
            .collect();
        let merged = Tensor::merge_shards(&shards).unwrap();
        assert_eq!(merged, t);
        // Same Arc handed back, not an equal copy.
        assert!(shards[0].shares_storage(&merged));
    }

    #[test]
    fn merge_gathers_disjoint_storages() {
        // Shards from two different tensors: contiguous tiling, but no
        // shared Arc — the merge must gather-copy.
        let a = params(3).shard_view(0..3).unwrap();
        let other = Tensor::from_flat(vec![0.0, 0.0, 0.0, 9.0, 8.0]);
        let b = other.shard_view(3..5).unwrap();
        let merged = Tensor::merge_shards(&[a.clone(), b]).unwrap();
        assert_eq!(merged.as_slice(), &[-3.0, -2.5, -2.0, 9.0, 8.0]);
        assert!(!a.shares_storage(&merged));
    }

    #[test]
    fn partial_tiling_merges_with_a_copy() {
        // Shards share one storage but only cover a prefix: values are
        // right, storage is fresh.
        let t = params(8);
        let shards = [t.shard_view(0..3).unwrap(), t.shard_view(3..5).unwrap()];
        let merged = Tensor::merge_shards(&shards).unwrap();
        assert_eq!(merged.as_slice(), &t.as_slice()[..5]);
        assert!(!shards[0].shares_storage(&merged));
    }

    #[test]
    fn out_of_range_view_is_rejected() {
        let t = params(4);
        assert!(matches!(
            t.shard_view(2..6),
            Err(TensorError::InvalidShard {
                start: 2,
                end: 6,
                len: 4
            })
        ));
    }

    #[test]
    #[allow(clippy::reversed_empty_ranges)] // the inversion is the point
    fn inverted_and_gapped_ranges_are_rejected() {
        let t = params(6);
        assert!(t.shard_view(4..2).is_err());
        let shards = [t.shard_view(0..2).unwrap(), t.shard_view(3..6).unwrap()];
        assert!(matches!(
            Tensor::merge_shards(&shards),
            Err(TensorError::InvalidShard {
                start: 3,
                end: 6,
                len: 2
            })
        ));
        assert!(Tensor::merge_shards(&[]).is_err());
    }

    #[test]
    fn one_coordinate_shards_round_trip() {
        let t = params(5);
        let shards: Vec<TensorShard> = (0..5).map(|i| t.shard_view(i..i + 1).unwrap()).collect();
        let merged = Tensor::merge_shards(&shards).unwrap();
        assert_eq!(merged, t);
        assert!(shards[0].shares_storage(&merged));
    }

    #[test]
    fn to_tensor_copies_values() {
        let t = params(6);
        let s = t.shard_view(2..5).unwrap();
        let owned = s.to_tensor();
        assert_eq!(owned.as_slice(), s.as_slice());
        assert!(!s.shares_storage(&owned));
    }
}
