//! Tensor shapes and row-major stride arithmetic.

use serde::{Deserialize, Serialize};

use crate::TensorError;

/// An owned list of dimension sizes, e.g. `[batch, channels, height, width]`.
///
/// Shapes are immutable once constructed. The empty shape `[]` denotes a
/// scalar with a single element.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a slice of dimension sizes.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// The scalar shape `[]` (volume 1).
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Returns the dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of dimensions; 1 for scalars).
    pub fn volume(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major strides: the number of elements to skip to advance one unit
    /// along each axis.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![0usize; self.0.len()];
        let mut acc = 1usize;
        for (i, &d) in self.0.iter().enumerate().rev() {
            strides[i] = acc;
            acc *= d;
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat row-major offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index rank or any
    /// component is out of range.
    pub fn offset(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.0.len() {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.0.clone(),
            });
        }
        let mut off = 0usize;
        let strides = self.strides();
        for ((&i, &d), &s) in index.iter().zip(&self.0).zip(&strides) {
            if i >= d {
                return Err(TensorError::IndexOutOfBounds {
                    index: index.to_vec(),
                    shape: self.0.clone(),
                });
            }
            off += i * s;
        }
        Ok(off)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_of_scalar_is_one() {
        assert_eq!(Shape::scalar().volume(), 1);
        assert_eq!(Shape::scalar().rank(), 0);
    }

    #[test]
    fn volume_is_product() {
        assert_eq!(Shape::new(&[2, 3, 4]).volume(), 24);
    }

    #[test]
    fn volume_with_zero_dim_is_zero() {
        assert_eq!(Shape::new(&[2, 0, 4]).volume(), 0);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert!(Shape::scalar().strides().is_empty());
    }

    #[test]
    fn offset_roundtrip() {
        let s = Shape::new(&[2, 3, 4]);
        let mut seen = std::collections::HashSet::new();
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let off = s.offset(&[i, j, k]).unwrap();
                    assert!(off < 24);
                    assert!(seen.insert(off), "offsets must be unique");
                }
            }
        }
        assert_eq!(seen.len(), 24);
    }

    #[test]
    fn offset_rejects_wrong_rank() {
        let s = Shape::new(&[2, 3]);
        assert!(matches!(
            s.offset(&[1]),
            Err(TensorError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn offset_rejects_out_of_range() {
        let s = Shape::new(&[2, 3]);
        assert!(s.offset(&[2, 0]).is_err());
        assert!(s.offset(&[0, 3]).is_err());
        assert!(s.offset(&[1, 2]).is_ok());
    }

    #[test]
    fn from_array_and_vec() {
        let a: Shape = [2, 2].into();
        let b: Shape = vec![2, 2].into();
        assert_eq!(a, b);
    }

    #[test]
    fn display_shows_dims() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2, 3]");
    }
}
