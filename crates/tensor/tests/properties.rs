//! Property-based tests for the tensor substrate: algebraic identities
//! that must hold for arbitrary finite inputs.

use proptest::prelude::*;
use tensor::{Tensor, TensorRng};

fn vec_pair(d: usize) -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    (
        proptest::collection::vec(-100.0f32..100.0, d),
        proptest::collection::vec(-100.0f32..100.0, d),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn add_commutes((a, b) in vec_pair(16)) {
        let ta = Tensor::from_flat(a);
        let tb = Tensor::from_flat(b);
        prop_assert_eq!(ta.add(&tb).unwrap(), tb.add(&ta).unwrap());
    }

    #[test]
    fn sub_is_add_neg((a, b) in vec_pair(16)) {
        let ta = Tensor::from_flat(a);
        let tb = Tensor::from_flat(b);
        prop_assert_eq!(ta.sub(&tb).unwrap(), ta.add(&tb.neg()).unwrap());
    }

    #[test]
    fn distance_is_a_metric((a, b) in vec_pair(8), c in proptest::collection::vec(-100.0f32..100.0, 8)) {
        let ta = Tensor::from_flat(a);
        let tb = Tensor::from_flat(b);
        let tc = Tensor::from_flat(c);
        let dab = ta.distance(&tb).unwrap();
        let dba = tb.distance(&ta).unwrap();
        prop_assert!((dab - dba).abs() <= 1e-3 * dab.abs().max(1.0), "symmetry");
        prop_assert!(ta.distance(&ta).unwrap() == 0.0, "identity");
        // triangle inequality with float slack
        let dac = ta.distance(&tc).unwrap();
        let dcb = tc.distance(&tb).unwrap();
        prop_assert!(dab <= dac + dcb + 1e-3, "triangle: {dab} vs {dac}+{dcb}");
    }

    #[test]
    fn cauchy_schwarz((a, b) in vec_pair(12)) {
        let ta = Tensor::from_flat(a);
        let tb = Tensor::from_flat(b);
        let dot = ta.dot(&tb).unwrap().abs();
        let bound = ta.norm() * tb.norm();
        prop_assert!(dot <= bound * (1.0 + 1e-4) + 1e-3, "{dot} vs {bound}");
    }

    #[test]
    fn scale_scales_norm(a in proptest::collection::vec(-100.0f32..100.0, 16), s in -10.0f32..10.0) {
        let ta = Tensor::from_flat(a);
        let scaled = ta.scale(s);
        let expected = ta.norm() * s.abs();
        prop_assert!((scaled.norm() - expected).abs() <= 1e-3 * expected.max(1.0));
    }

    #[test]
    fn matmul_distributes_over_add(
        a in proptest::collection::vec(-10.0f32..10.0, 9),
        b in proptest::collection::vec(-10.0f32..10.0, 9),
        c in proptest::collection::vec(-10.0f32..10.0, 9),
    ) {
        let ta = Tensor::from_vec(a, &[3, 3]).unwrap();
        let tb = Tensor::from_vec(b, &[3, 3]).unwrap();
        let tc = Tensor::from_vec(c, &[3, 3]).unwrap();
        let lhs = ta.matmul(&tb.add(&tc).unwrap()).unwrap();
        let rhs = ta.matmul(&tb).unwrap().add(&ta.matmul(&tc).unwrap()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-2 * x.abs().max(1.0));
        }
    }

    #[test]
    fn transpose_preserves_matmul(
        a in proptest::collection::vec(-10.0f32..10.0, 6),
        b in proptest::collection::vec(-10.0f32..10.0, 6),
    ) {
        // (A·B)^T = B^T · A^T
        let ta = Tensor::from_vec(a, &[2, 3]).unwrap();
        let tb = Tensor::from_vec(b, &[3, 2]).unwrap();
        let lhs = ta.matmul(&tb).unwrap().transpose().unwrap();
        let rhs = tb.transpose().unwrap().matmul(&ta.transpose().unwrap()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-2 * x.abs().max(1.0));
        }
    }

    #[test]
    fn reshape_preserves_sum(a in proptest::collection::vec(-10.0f32..10.0, 24)) {
        let t = Tensor::from_flat(a);
        let r = t.reshape(&[2, 3, 4]).unwrap();
        prop_assert!((t.sum() - r.sum()).abs() < 1e-3);
    }

    #[test]
    fn mean_of_is_within_bounds(
        vecs in proptest::collection::vec(proptest::collection::vec(-50.0f32..50.0, 4), 1..10)
    ) {
        let ts: Vec<Tensor> = vecs.into_iter().map(Tensor::from_flat).collect();
        let m = Tensor::mean_of(&ts).unwrap();
        for i in 0..4 {
            let lo = ts.iter().map(|t| t.as_slice()[i]).fold(f32::INFINITY, f32::min);
            let hi = ts.iter().map(|t| t.as_slice()[i]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(m.as_slice()[i] >= lo - 1e-3 && m.as_slice()[i] <= hi + 1e-3);
        }
    }

    #[test]
    fn rng_streams_reproducible(seed in 0u64..10_000) {
        let mut a = TensorRng::new(seed);
        let mut b = TensorRng::new(seed);
        let ta = a.normal_tensor(&[8], 0.0, 1.0);
        let tb = b.normal_tensor(&[8], 0.0, 1.0);
        prop_assert_eq!(ta, tb);
    }
}
